package analysis

import (
	"go/ast"
)

// goroutineAllowedPackages are the packages exempt from the bare-goroutine
// ban. internal/par is the module's one sanctioned concurrency primitive:
// its bounded worker pool collects results in index order, confines panics,
// and is covered by the seed-isolation rules the parshare analyzer
// enforces at every call site. Everything else — model code, experiment
// generators, commands — must fan out through it. (The one other
// legitimate `go` in the tree is inside sim.Proc, the cooperative
// abstraction itself, carrying an explicit //mklint:ignore with the
// invariant that justifies it.)
var goroutineAllowedPackages = []string{
	"internal/par",
}

// simOnlyPackages are the simulation-model packages, where the diagnostic
// points at the cooperative sim.Proc API instead of par: inside the model
// the engine promises exactly one runnable goroutine at any moment, so not
// even par's index-ordered pool is admissible.
var simOnlyPackages = []string{
	"internal/sim",
	"internal/kernel",
	"internal/cluster",
}

// NoGoroutine forbids bare go statements everywhere in the module except
// internal/par, the sanctioned worker-pool fan-out.
var NoGoroutine = &Analyzer{
	Name: "nogoroutine",
	Doc: "forbid bare go statements outside internal/par; fan independent " +
		"jobs out through par.Map, and inside the simulation model use the " +
		"cooperative sim.Proc abstraction",
	AppliesTo: func(importPath string) bool {
		return !pathInAny(importPath, goroutineAllowedPackages)
	},
	Run: runNoGoroutine,
}

func runNoGoroutine(pass *Pass) error {
	inModel := pathInAny(pass.Pkg.Path(), simOnlyPackages)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if inModel {
				pass.Reportf(gs.Pos(), "bare go statement in simulation-model package %s: the engine requires exactly one runnable goroutine; use sim.Engine.Spawn and the cooperative sim.Proc API (determinism contract, see docs/LINTING.md)",
					pass.Pkg.Path())
			} else {
				pass.Reportf(gs.Pos(), "bare go statement in %s: internal/par is the module's one sanctioned goroutine spawner; fan independent jobs out through par.Map / par.MapErr (determinism contract, see docs/LINTING.md)",
					pass.Pkg.Path())
			}
			return true
		})
	}
	return nil
}
