package analysis_test

import (
	"os"
	"path/filepath"
	"testing"

	"mklite/internal/analysis"
)

// TestLoadResilience: one broken package must not abort the load — the good
// package still comes back for analysis and the broken one is reported as a
// LoadFailure (the driver turns that into exit 2 after printing the
// diagnostics it could compute).
func TestLoadResilience(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to go list")
	}
	dir := t.TempDir()
	writeFile := func(rel, content string) {
		t.Helper()
		path := filepath.Join(dir, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	writeFile("go.mod", "module brokentest\n\ngo 1.24\n")
	writeFile("good/good.go", "package good\n\nfunc Ok() int { return 1 }\n")
	writeFile("bad/bad.go", "package bad\n\nfunc Broken( {\n")

	pkgs, failures, err := analysis.Load(dir, "./...")
	if err != nil {
		t.Fatalf("Load aborted instead of degrading: %v", err)
	}
	var paths []string
	for _, p := range pkgs {
		paths = append(paths, p.ImportPath)
	}
	if len(pkgs) != 1 || pkgs[0].ImportPath != "brokentest/good" {
		t.Errorf("loaded packages = %v, want exactly [brokentest/good]", paths)
	}
	if len(failures) != 1 {
		t.Fatalf("got %d load failures, want 1: %v", len(failures), failures)
	}
	if failures[0].ImportPath != "brokentest/bad" {
		t.Errorf("failure package = %q, want brokentest/bad", failures[0].ImportPath)
	}

	// The packages that did load are still analyzable.
	if _, err := analysis.Run(pkgs, analysis.All()); err != nil {
		t.Fatalf("analyzing surviving packages: %v", err)
	}
}
