// Package analysistest exercises mklint analyzers against fixture packages
// under testdata/src, in the style of
// golang.org/x/tools/go/analysis/analysistest: fixture sources carry
// expectation comments and the harness verifies that the analyzer's
// diagnostics and the expectations agree exactly, in both directions.
//
// An expectation comment names one or more backquoted regular expressions
// that must each match a distinct diagnostic reported on the comment's
// line:
//
//	_ = time.Now() // want `use of time\.Now is forbidden`
//
// A line-offset variant anchors the expectation to a nearby line, which is
// needed when the diagnostic's line cannot carry a comment of its own —
// e.g. the "malformed directive" diagnostic that is reported on the line
// of a //mklint:ignore comment:
//
//	//mklint:ignore maprange
//	// want(-1) `malformed //mklint:ignore directive`
package analysistest

import (
	"bytes"
	"fmt"
	"go/ast"
	"maps"
	"os"
	"path/filepath"
	"regexp"
	"slices"
	"strconv"
	"strings"
	"testing"

	"mklite/internal/analysis"
)

// TestData returns the canonical testdata directory of the calling
// package's source tree.
func TestData() string {
	abs, err := filepath.Abs("testdata")
	if err != nil {
		panic(err)
	}
	return abs
}

// Run loads the fixture package in testdata/src/<dir>, applies the
// analyzer, and checks the // want expectations. The fixture's import path
// is dir itself.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, dir string) {
	t.Helper()
	RunWithPath(t, testdata, a, dir, dir)
}

// RunWithPath is Run with an explicit import path presented to the
// analyzer, so fixtures can impersonate packages that path-scoped
// analyzers (nogoroutine) apply to.
func RunWithPath(t *testing.T, testdata string, a *analysis.Analyzer, dir, importPath string) {
	t.Helper()
	if a.AppliesTo != nil && !a.AppliesTo(importPath) {
		t.Fatalf("analyzer %s does not apply to import path %q; use RunWithPath with a matching path", a.Name, importPath)
	}
	RunSuite(t, testdata, []*analysis.Analyzer{a}, dir, importPath)
}

// RunSuite runs several analyzers together over one fixture — the way the
// real driver does — and checks the combined diagnostics against the
// fixture's want comments. Include analysis.IgnoreAudit to exercise the
// post-suite stale-directive audit.
func RunSuite(t *testing.T, testdata string, analyzers []*analysis.Analyzer, dir, importPath string) {
	t.Helper()
	pkg := loadFixture(t, testdata, dir, importPath)
	diags, err := analysis.Run([]*analysis.Package{pkg}, analyzers)
	if err != nil {
		t.Fatalf("running suite on %s: %v", dir, err)
	}
	var names []string
	for _, a := range analyzers {
		names = append(names, a.Name)
	}
	wants := collectWants(t, pkg)
	checkDiagnostics(t, strings.Join(names, "+"), diags, wants)
}

// RunFix runs the analyzer over the fixture, applies every machine-applicable
// suggested fix in memory (gofmt-clean, exactly as `mklint -fix` would write
// it), and requires each changed file to be byte-identical to its
// <name>.golden sibling.
func RunFix(t *testing.T, testdata string, a *analysis.Analyzer, dir string) {
	t.Helper()
	pkg := loadFixture(t, testdata, dir, dir)
	diags, err := analysis.Run([]*analysis.Package{pkg}, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, dir, err)
	}
	fixed, skipped, err := analysis.FixFiles(diags)
	if err != nil {
		t.Fatalf("applying fixes for %s: %v", dir, err)
	}
	if skipped > 0 {
		t.Errorf("%d overlapping fix(es) skipped in %s", skipped, dir)
	}
	if len(fixed) == 0 {
		t.Fatalf("analyzer %s produced no fixes on fixture %s", a.Name, dir)
	}
	for _, file := range slices.Sorted(maps.Keys(fixed)) {
		golden := file + ".golden"
		want, err := os.ReadFile(golden)
		if err != nil {
			t.Fatalf("reading golden file: %v", err)
		}
		if got := fixed[file]; !bytes.Equal(got, want) {
			t.Errorf("fixed %s does not match %s:\n-- got --\n%s\n-- want --\n%s",
				filepath.Base(file), filepath.Base(golden), got, want)
		}
	}
}

// loadFixture loads testdata/src/<dir> as importPath and fails the test on
// any load or type error.
func loadFixture(t *testing.T, testdata, dir, importPath string) *analysis.Package {
	t.Helper()
	pkgDir := filepath.Join(testdata, "src", dir)
	pkg, err := analysis.LoadDir(pkgDir, importPath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", pkgDir, err)
	}
	if len(pkg.TypeErrors) > 0 {
		t.Fatalf("fixture %s has type errors: %v", pkgDir, pkg.TypeErrors)
	}
	return pkg
}

// A want is one expectation: a regexp that must match a diagnostic on a
// specific line of a specific file.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

// wantRx splits a want comment into its optional line offset and the
// backquoted regexp list.
var wantRx = regexp.MustCompile(`// want(\(([+-]\d+)\))? (.*)$`)

// collectWants extracts every expectation from the fixture's comments.
func collectWants(t *testing.T, pkg *analysis.Package) []*want {
	t.Helper()
	var wants []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				wants = append(wants, parseWant(t, pkg, c)...)
			}
		}
	}
	return wants
}

func parseWant(t *testing.T, pkg *analysis.Package, c *ast.Comment) []*want {
	t.Helper()
	m := wantRx.FindStringSubmatch(c.Text)
	if m == nil {
		return nil
	}
	pos := pkg.Fset.Position(c.Pos())
	line := pos.Line
	if m[2] != "" {
		off, err := strconv.Atoi(m[2])
		if err != nil {
			t.Fatalf("%s: bad want offset %q", pos, m[2])
		}
		line += off
	}
	var wants []*want
	rest := m[3]
	for {
		start := strings.IndexByte(rest, '`')
		if start < 0 {
			break
		}
		end := strings.IndexByte(rest[start+1:], '`')
		if end < 0 {
			t.Fatalf("%s: unterminated backquoted regexp in want comment", pos)
		}
		raw := rest[start+1 : start+1+end]
		re, err := regexp.Compile(raw)
		if err != nil {
			t.Fatalf("%s: bad want regexp %q: %v", pos, raw, err)
		}
		wants = append(wants, &want{file: pos.Filename, line: line, re: re, raw: raw})
		rest = rest[start+1+end+1:]
	}
	if len(wants) == 0 {
		t.Fatalf("%s: want comment carries no backquoted regexps", pos)
	}
	return wants
}

// checkDiagnostics verifies the exact two-way correspondence between
// diagnostics and expectations.
func checkDiagnostics(t *testing.T, analyzer string, diags []analysis.Diagnostic, wants []*want) {
	t.Helper()
	for _, d := range diags {
		if !claim(wants, d) {
			t.Errorf("%s: unexpected diagnostic: %s: %s", d.Pos, d.Analyzer, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no %s diagnostic matching %q", w.file, w.line, analyzer, w.raw)
		}
	}
}

// claim marks the first unmatched want satisfied by the diagnostic.
func claim(wants []*want, d analysis.Diagnostic) bool {
	full := fmt.Sprintf("%s: %s", d.Analyzer, d.Message)
	for _, w := range wants {
		if w.matched || w.file != d.Pos.Filename || w.line != d.Pos.Line {
			continue
		}
		if w.re.MatchString(d.Message) || w.re.MatchString(full) {
			w.matched = true
			return true
		}
	}
	return false
}
