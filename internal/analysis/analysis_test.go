package analysis_test

import (
	"strings"
	"testing"

	"mklite/internal/analysis"
	"mklite/internal/analysis/analysistest"
)

func TestNoWallTime(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), analysis.NoWallTime, "nowalltime")
}

func TestNoGlobalRand(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), analysis.NoGlobalRand, "noglobalrand")
}

func TestMapRange(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), analysis.MapRange, "maprange")
}

func TestNoGoroutine(t *testing.T) {
	// The fixture impersonates a package under internal/sim so the
	// simulation-model wording of the diagnostic is exercised.
	analysistest.RunWithPath(t, analysistest.TestData(), analysis.NoGoroutine,
		"nogoroutine", "mklite/internal/sim/fixture")
}

func TestNoGoroutineScope(t *testing.T) {
	// Module-wide ban with exactly one exemption: internal/par, the
	// sanctioned worker-pool fan-out.
	applies := analysis.NoGoroutine.AppliesTo
	for path, want := range map[string]bool{
		"mklite/internal/sim":         true,
		"mklite/internal/kernel":      true,
		"mklite/internal/cluster":     true,
		"mklite/internal/noise":       true,
		"mklite/internal/experiments": true,
		"mklite/cmd/mkrun":            true,
		"mklite":                      true,
		"mklite/internal/par":         false,
	} {
		if got := applies(path); got != want {
			t.Errorf("NoGoroutine.AppliesTo(%q) = %v, want %v", path, got, want)
		}
	}
}

func TestParShare(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), analysis.ParShare, "parshare")
}

func TestSeedFlow(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), analysis.SeedFlow, "seedflow")
}

// TestSeedFlowFix: the base+i*prime fixture both reports correctly and,
// after applying the suggested fix, is byte-identical to the hand-fixed
// golden file — the same path `mklint -fix` takes.
func TestSeedFlowFix(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), analysis.SeedFlow, "seedflowfix")
	analysistest.RunFix(t, analysistest.TestData(), analysis.SeedFlow, "seedflowfix")
}

func TestFloatOrder(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), analysis.FloatOrder, "floatorder")
}

func TestErrDrop(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), analysis.ErrDrop, "errdrop")
}

// TestIgnoreAudit runs maprange together with the post-suite audit, the way
// the real driver does: the live directive suppresses silently, the stale
// and unknown-analyzer directives are reported.
func TestIgnoreAudit(t *testing.T) {
	analysistest.RunSuite(t, analysistest.TestData(),
		[]*analysis.Analyzer{analysis.MapRange, analysis.IgnoreAudit},
		"ignoreaudit", "ignoreaudit")
}

// TestIgnoreDirectiveSuppresses: a well-formed //mklint:ignore with a
// reason silences the named analyzer in both standalone and trailing
// placement — the fixture expects zero diagnostics.
func TestIgnoreDirectiveSuppresses(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), analysis.MapRange, "ignore")
}

// TestIgnoreDirectiveRequiresReason: a directive without a reason is
// reported as malformed and does not suppress the underlying diagnostic.
func TestIgnoreDirectiveRequiresReason(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), analysis.MapRange, "ignorebad")
}

// TestSelfClean: the analyzer suite must hold its own packages (and the
// whole module) to the contract it enforces. This is the same gate CI runs
// via `go run ./cmd/mklint ./...`, kept here so plain `go test` catches
// regressions too.
func TestSelfClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	pkgs, failures, err := analysis.Load("../..", "./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	for _, f := range failures {
		t.Errorf("load failure: %v", f)
	}
	diags, err := analysis.Run(pkgs, analysis.All())
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}
	for _, d := range diags {
		t.Errorf("unexpected diagnostic: %s", d)
	}
	if len(pkgs) == 0 {
		t.Fatal("module load returned no packages")
	}
	var paths []string
	for _, p := range pkgs {
		paths = append(paths, p.ImportPath)
	}
	for _, must := range []string{"mklite", "mklite/internal/sim", "mklite/cmd/mklint"} {
		if !strings.Contains(" "+strings.Join(paths, " ")+" ", " "+must+" ") {
			t.Errorf("module load missed package %s (got %d packages)", must, len(pkgs))
		}
	}
}
