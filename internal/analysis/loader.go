package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// A Package is one loaded, parsed and type-checked package ready for
// analysis.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	TypesInfo  *types.Info
	// TypeErrors collects type-checker errors. Analysis proceeds on a
	// best-effort basis when the package has errors, mirroring go vet.
	TypeErrors []error
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Standard   bool
	Export     string
	Incomplete bool
	Error      *listError
}

// listError mirrors go list's PackageError JSON shape.
type listError struct {
	Err string
}

// A LoadFailure records one package that could not be loaded (unparseable
// source, go list error). Loading continues past failures so diagnostics
// for the packages that did load are still reported; the driver exits 2
// when any failure occurred.
type LoadFailure struct {
	ImportPath string
	Err        error
}

func (f LoadFailure) Error() string {
	return fmt.Sprintf("loading %s: %v", f.ImportPath, f.Err)
}

// goList runs the go command's package loader and decodes its JSON stream.
func goList(dir string, args ...string) ([]listedPackage, error) {
	cmd := exec.Command("go", append([]string{"list"}, args...)...)
	cmd.Dir = dir
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(args, " "), err, errb.String())
	}
	var pkgs []listedPackage
	dec := json.NewDecoder(&out)
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// exportCatalog resolves import paths to compiled export-data files. It is
// seeded from one `go list -deps -export` sweep and extended lazily when an
// analyzed file imports a package outside that dependency closure (fixture
// sources importing stdlib packages the module itself does not use).
type exportCatalog struct {
	dir   string
	files map[string]string
}

func newExportCatalog(dir string) *exportCatalog {
	return &exportCatalog{dir: dir, files: map[string]string{}}
}

// add records export files from a `go list -export` result set.
func (c *exportCatalog) add(pkgs []listedPackage) {
	for _, p := range pkgs {
		if p.Export != "" {
			c.files[p.ImportPath] = p.Export
		}
	}
}

// resolve returns the export file for path, compiling it on demand.
func (c *exportCatalog) resolve(path string) (string, error) {
	if f, ok := c.files[path]; ok {
		return f, nil
	}
	pkgs, err := goList(c.dir, "-deps", "-export", "-json=ImportPath,Export", path)
	if err != nil {
		return "", err
	}
	c.add(pkgs)
	if f, ok := c.files[path]; ok {
		return f, nil
	}
	return "", fmt.Errorf("no export data for %q", path)
}

// newImporter builds a types.Importer that reads gc export data through the
// catalog. Export data is self-describing, so no source type-checking of
// dependencies is needed and loading works fully offline.
func newImporter(fset *token.FileSet, cat *exportCatalog) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, err := cat.resolve(path)
		if err != nil {
			return nil, err
		}
		return os.Open(f)
	})
}

// newTypesInfo allocates the fact tables the analyzers consult.
func newTypesInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}

// Load resolves the given go-list patterns (e.g. "./...") relative to dir
// and returns every matched non-standard package parsed and type-checked,
// in dependency order (a package's in-module dependencies precede it, the
// order the facts mechanism needs). Test files are not loaded; the
// determinism contract is enforced on the shipped sources, while tests are
// covered by `go test -race`.
//
// A package that fails to load — unparseable source, a go list error —
// does not abort the load: it is returned as a LoadFailure and analysis
// proceeds on the packages that did load. Only a whole-invocation failure
// (go list itself unusable) is returned as err.
func Load(dir string, patterns ...string) ([]*Package, []LoadFailure, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	// One sweep gives both the target packages and export data for the
	// whole dependency closure. -e keeps broken packages in the stream
	// (with Error set) instead of failing the listing wholesale; -deps
	// guarantees dependencies are listed before their dependents.
	listArgs := append([]string{
		"-deps", "-export", "-e",
		"-json=ImportPath,Dir,GoFiles,Standard,Export,Incomplete,Error",
	}, patterns...)
	listed, err := goList(dir, listArgs...)
	if err != nil {
		return nil, nil, err
	}
	cat := newExportCatalog(dir)
	cat.add(listed)

	// -deps lists dependencies too; keep only packages matched by the
	// patterns themselves.
	matchArgs := append([]string{"-e", "-json=ImportPath"}, patterns...)
	matched, err := goList(dir, matchArgs...)
	if err != nil {
		return nil, nil, err
	}
	wanted := map[string]bool{}
	for _, p := range matched {
		wanted[p.ImportPath] = true
	}

	fset := token.NewFileSet()
	imp := newImporter(fset, cat)
	var out []*Package
	var failures []LoadFailure
	for _, lp := range listed {
		if !wanted[lp.ImportPath] || lp.Standard {
			continue
		}
		if lp.Error != nil {
			failures = append(failures, LoadFailure{
				ImportPath: lp.ImportPath,
				Err:        fmt.Errorf("%s", strings.TrimSpace(lp.Error.Err)),
			})
			continue
		}
		pkg, err := checkPackage(fset, imp, lp.ImportPath, lp.Dir, lp.GoFiles)
		if err != nil {
			failures = append(failures, LoadFailure{ImportPath: lp.ImportPath, Err: err})
			continue
		}
		out = append(out, pkg)
	}
	return out, failures, nil
}

// LoadDir parses and type-checks the .go files of a single directory as the
// package importPath, without consulting go list for the directory itself.
// The analysistest harness uses it to load fixtures from testdata, where
// the go tool refuses to look.
func LoadDir(dir, importPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, e.Name())
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}
	fset := token.NewFileSet()
	imp := newImporter(fset, newExportCatalog(dir))
	return checkPackage(fset, imp, importPath, dir, files)
}

// checkPackage parses the named files and runs the type checker, tolerating
// type errors so analyzers still see a best-effort package.
func checkPackage(fset *token.FileSet, imp types.Importer, importPath, dir string, fileNames []string) (*Package, error) {
	var files []*ast.File
	for _, name := range fileNames {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %w", name, err)
		}
		files = append(files, f)
	}
	pkg := &Package{
		ImportPath: importPath,
		Dir:        dir,
		Fset:       fset,
		TypesInfo:  newTypesInfo(),
	}
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	tpkg, err := conf.Check(importPath, fset, files, pkg.TypesInfo)
	if err != nil && tpkg == nil {
		return nil, fmt.Errorf("type-checking %s: %w", importPath, err)
	}
	pkg.Types = tpkg
	pkg.Files = files
	return pkg, nil
}
