package analysis

import (
	"fmt"
	"go/format"
	"maps"
	"os"
	"slices"
	"sort"
)

// FixFiles computes the result of applying every machine-applicable
// suggested fix in diags, returning the new gofmt-formatted contents of
// each changed file without writing anything. Overlapping edits are
// resolved first-wins in diagnostic order; the skipped count reports how
// many fixes were dropped to a conflict, so a driver can tell the user to
// re-run.
func FixFiles(diags []Diagnostic) (fixed map[string][]byte, skipped int, err error) {
	byFile := map[string][]Edit{}
	for _, d := range diags {
		for _, fix := range d.SuggestedFixes {
			for _, e := range fix.Edits {
				if e.Filename == "" || e.End < e.Start {
					return nil, 0, fmt.Errorf("%s: fix %q carries an unresolved edit", d.Pos, fix.Message)
				}
				byFile[e.Filename] = append(byFile[e.Filename], e)
			}
		}
	}
	if len(byFile) == 0 {
		return nil, 0, nil
	}
	fixed = map[string][]byte{}
	for _, file := range slices.Sorted(maps.Keys(byFile)) {
		src, rerr := os.ReadFile(file)
		if rerr != nil {
			return nil, 0, rerr
		}
		out, skip, aerr := applyEdits(src, byFile[file])
		if aerr != nil {
			return nil, 0, fmt.Errorf("%s: %w", file, aerr)
		}
		skipped += skip
		formatted, ferr := format.Source(out)
		if ferr != nil {
			return nil, 0, fmt.Errorf("%s: fixed source does not parse: %w", file, ferr)
		}
		fixed[file] = formatted
	}
	return fixed, skipped, nil
}

// ApplyFixes applies every suggested fix in diags to the files on disk and
// returns the changed file names in sorted order.
func ApplyFixes(diags []Diagnostic) (changed []string, skipped int, err error) {
	fixed, skipped, err := FixFiles(diags)
	if err != nil {
		return nil, skipped, err
	}
	changed = slices.Sorted(maps.Keys(fixed))
	for _, file := range changed {
		info, err := os.Stat(file)
		if err != nil {
			return nil, skipped, err
		}
		if err := os.WriteFile(file, fixed[file], info.Mode().Perm()); err != nil {
			return nil, skipped, err
		}
	}
	return changed, skipped, nil
}

// applyEdits splices the edits into src, dropping edits that overlap an
// earlier (lower-offset) one. A pure deletion that leaves its line holding
// only whitespace is widened to remove the whole line, so deleting a
// standalone //mklint:ignore directive does not leave a blank hole.
func applyEdits(src []byte, edits []Edit) ([]byte, int, error) {
	sort.SliceStable(edits, func(i, j int) bool {
		if edits[i].Start != edits[j].Start {
			return edits[i].Start < edits[j].Start
		}
		return edits[i].End < edits[j].End
	})
	var out []byte
	skipped := 0
	prevEnd := 0
	for _, e := range edits {
		if e.Start < prevEnd {
			skipped++
			continue
		}
		if e.Start > len(src) || e.End > len(src) {
			return nil, skipped, fmt.Errorf("edit [%d,%d) outside file of %d bytes", e.Start, e.End, len(src))
		}
		start, end := e.Start, e.End
		if e.NewText == "" {
			start, end = widenDeletion(src, start, end, prevEnd)
		}
		if start < prevEnd {
			skipped++
			continue
		}
		out = append(out, src[prevEnd:start]...)
		out = append(out, e.NewText...)
		prevEnd = end
	}
	out = append(out, src[prevEnd:]...)
	return out, skipped, nil
}

// widenDeletion extends a deletion to cover the whole source line when the
// deleted range is the only non-whitespace content on it.
func widenDeletion(src []byte, start, end, floor int) (int, int) {
	ls := start
	for ls > floor && src[ls-1] != '\n' {
		if src[ls-1] != ' ' && src[ls-1] != '\t' {
			return start, end // code precedes the range on this line
		}
		ls--
	}
	le := end
	for le < len(src) && src[le] != '\n' {
		if src[le] != ' ' && src[le] != '\t' {
			return start, end // code follows the range on this line
		}
		le++
	}
	if le < len(src) {
		le++ // swallow the newline
	}
	return ls, le
}
