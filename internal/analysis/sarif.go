package analysis

import (
	"encoding/json"
	"io"
	"path/filepath"
	"strings"
)

// SARIF 2.1.0 document structure, narrowed to the fields mklint emits.
// The schema reference lets CI viewers (GitHub code scanning among them)
// validate and annotate without any mklint-specific glue.
type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	RuleIndex int             `json:"ruleIndex"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// WriteSARIF renders diags as a SARIF 2.1.0 log on w. Every analyzer in
// analyzers becomes a rule (even if it found nothing, so the rule inventory
// documents the suite), every diagnostic a result at level error. File
// paths are made relative to baseDir and forward-slashed, as SARIF URIs
// require; paths outside baseDir stay absolute.
func WriteSARIF(w io.Writer, baseDir string, analyzers []*Analyzer, diags []Diagnostic) error {
	ruleIndex := map[string]int{}
	var rules []sarifRule
	for _, a := range analyzers {
		ruleIndex[a.Name] = len(rules)
		rules = append(rules, sarifRule{
			ID:               a.Name,
			ShortDescription: sarifMessage{Text: a.Doc},
		})
	}
	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		idx, ok := ruleIndex[d.Analyzer]
		if !ok {
			idx = len(rules)
			ruleIndex[d.Analyzer] = idx
			rules = append(rules, sarifRule{
				ID:               d.Analyzer,
				ShortDescription: sarifMessage{Text: d.Analyzer},
			})
		}
		results = append(results, sarifResult{
			RuleID:    d.Analyzer,
			RuleIndex: idx,
			Level:     "error",
			Message:   sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{
						URI: sarifURI(baseDir, d.Pos.Filename),
					},
					Region: sarifRegion{
						StartLine:   d.Pos.Line,
						StartColumn: d.Pos.Column,
					},
				},
			}},
		})
	}
	log := sarifLog{
		Schema:  "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool: sarifTool{Driver: sarifDriver{
				Name:  "mklint",
				Rules: rules,
			}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(&log)
}

// sarifURI renders a filename as a relative forward-slashed URI under
// baseDir when possible.
func sarifURI(baseDir, filename string) string {
	if baseDir != "" {
		if rel, err := filepath.Rel(baseDir, filename); err == nil && !strings.HasPrefix(rel, "..") {
			filename = rel
		}
	}
	return filepath.ToSlash(filename)
}
