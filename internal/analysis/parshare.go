package analysis

import (
	"go/ast"
	"go/types"
)

// parFuncs are the fan-out entry points of internal/par whose closure
// arguments the analyzer inspects.
var parFuncs = map[string]bool{
	"Map":         true,
	"MapErr":      true,
	"MapWidth":    true,
	"MapWidthErr": true,
}

// sharedSimTypes are the internal/sim types that are per-job state by
// contract: a generator shared across par jobs races, and — worse for the
// reproducibility gate — its draw order becomes a function of worker
// scheduling, so identically seeded runs diverge silently. Engine and Proc
// carry the same hazard: the whole simulation state hangs off them.
var sharedSimTypes = map[string]bool{
	"RNG":    true,
	"Engine": true,
	"Proc":   true,
}

// ParShare rejects par.Map closures that capture a *sim.RNG (or sim.Engine
// / sim.Proc) from an enclosing scope. Each job must derive its own stream
// inside the closure — sim.NewRNG(sim.StreamSeed(seed, i)) or an
// index-addressed element of rng.SplitN — never share the caller's.
var ParShare = &Analyzer{
	Name: "parshare",
	Doc: "forbid capturing a *sim.RNG (or sim.Engine/sim.Proc) across a " +
		"par.Map closure; derive per-job streams inside the job from " +
		"(seed, index) with sim.StreamSeed",
	Run: runParShare,
}

func runParShare(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isParCall(pass, call) {
				return true
			}
			for _, arg := range call.Args {
				lit, ok := arg.(*ast.FuncLit)
				if !ok {
					continue
				}
				checkClosure(pass, lit)
			}
			return true
		})
	}
	return nil
}

// isParCall reports whether call invokes one of internal/par's fan-out
// functions.
func isParCall(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !parFuncs[sel.Sel.Name] {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	return pathMatches(fn.Pkg().Path(), "internal/par")
}

// checkClosure reports every use inside lit of a shared-sim-typed variable
// declared outside it.
func checkClosure(pass *Pass, lit *ast.FuncLit) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := pass.TypesInfo.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		// Declared inside the closure (parameter or local) is fine;
		// only captures of enclosing state are per-job leaks.
		if v.Pos() >= lit.Pos() && v.Pos() < lit.End() {
			return true
		}
		if name := sharedSimTypeName(v.Type()); name != "" {
			pass.Reportf(id.Pos(), "par closure captures %s %q from an enclosing scope: per-job state must be derived inside the job — sim.NewRNG(sim.StreamSeed(seed, uint64(i))) — or worker scheduling leaks into the draw order (determinism contract, see docs/LINTING.md)",
				name, id.Name)
		}
		return true
	})
}

// sharedSimTypeName returns the display name ("*sim.RNG") if t is — or
// points to — one of the guarded internal/sim types, else "".
func sharedSimTypeName(t types.Type) string {
	prefix := ""
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
		prefix = "*"
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil || !pathMatches(obj.Pkg().Path(), "internal/sim") {
		return ""
	}
	if !sharedSimTypes[obj.Name()] {
		return ""
	}
	return prefix + "sim." + obj.Name()
}
