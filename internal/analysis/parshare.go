package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// parFuncs are the fan-out entry points of internal/par whose closure
// arguments the analyzer inspects.
var parFuncs = map[string]bool{
	"Map":         true,
	"MapErr":      true,
	"MapWidth":    true,
	"MapWidthErr": true,
}

// sharedTypeGroups lists the types that are per-job state by contract,
// grouped by owning package. Sharing one across par jobs races, and — worse
// for the reproducibility gate — makes the run a function of worker
// scheduling:
//
//   - internal/sim: a shared RNG's draw order depends on which worker draws
//     first; Engine and Proc carry the whole simulation state.
//   - internal/trace: Sink/Counters/Events are single-goroutine by design
//     (no locks on the emission path), so concurrent emission corrupts the
//     counts and interleaves the event ring nondeterministically. Each job
//     builds its own sink inside the closure; aggregation happens by
//     merging in index order after the join.
//   - internal/metrics: Registry/Histogram record with plain int64
//     increments under the same single-goroutine contract as the sink
//     that feeds them; a shared registry races and merges rank histograms
//     in worker order.
//   - internal/fault: an Injector owns its run's fault RNG stream; sharing
//     one across jobs makes each job's fault draws depend on which worker
//     drew first — the exact scheduling leak the fault determinism
//     contract (internal/fault point 2) forbids.
//   - internal/fleet: Scheduler and Allocator are one facility run's
//     mutable queue/occupancy state. The scheduler's event loop is
//     sequential by contract; a par worker touching either would make node
//     placement — and every co-tenancy-scaled interference plan derived
//     from it — depend on worker scheduling. Launch batches receive
//     immutable launch specs instead.
//   - internal/obs: Timeline and DecisionLog are one observed facility
//     run's artifact state, fed by the scheduler's sequential commit loop.
//     A par worker emitting into either would interleave occupancy spans
//     and decision records in worker order, breaking the byte-identical-
//     at-any-width contract; workers build job-local rings and counters,
//     merged in batch order after the join.
//   - internal/sched: State is one run's mutable scheduler state — the
//     adaptive policy's EMA, live quantum and RNG stream all advance on
//     every Step, so a State shared across par jobs makes quantum
//     adaptation (and the draws behind it) depend on which worker stepped
//     first. Policy is guarded with it: a policy handle's only job-side
//     use is minting per-run State, and the contract keeps both derivations
//     inside the closure (k.Sched().NewState(...) per job).
var sharedTypeGroups = []struct {
	pkg   string // import-path suffix of the owning package
	disp  string // display prefix in diagnostics
	names map[string]bool
}{
	{"internal/sim", "sim", map[string]bool{"RNG": true, "Engine": true, "Proc": true}},
	{"internal/trace", "trace", map[string]bool{"Sink": true, "Counters": true, "Events": true}},
	{"internal/metrics", "metrics", map[string]bool{"Registry": true, "Histogram": true}},
	{"internal/fault", "fault", map[string]bool{"Injector": true}},
	{"internal/fleet", "fleet", map[string]bool{"Scheduler": true, "Allocator": true}},
	{"internal/obs", "obs", map[string]bool{"Timeline": true, "DecisionLog": true}},
	{"internal/sched", "sched", map[string]bool{"Policy": true, "State": true}},
}

// ParShare rejects par.Map closures that capture per-job state — a *sim.RNG
// (or sim.Engine/sim.Proc) or a *trace.Sink (or trace.Counters/trace.Events)
// — from an enclosing scope, and forbids package-level trace sinks outright.
// Each job derives its own stream and builds its own sink inside the
// closure; merged aggregation happens after the join.
var ParShare = &Analyzer{
	Name: "parshare",
	Doc: "forbid capturing a *sim.RNG (or sim.Engine/sim.Proc), a " +
		"*trace.Sink (or trace.Counters/trace.Events), a " +
		"*metrics.Registry (or metrics.Histogram), a *fault.Injector, a " +
		"*fleet.Scheduler (or fleet.Allocator), an *obs.Timeline (or " +
		"obs.DecisionLog) or a sched.Policy (or *sched.State) across a " +
		"par.Map closure, " +
		"and forbid package-level trace sinks and metrics registries; " +
		"per-job state is derived inside the job and merged after the join",
	Run: runParShare,
}

func runParShare(pass *Pass) error {
	// internal/trace and internal/metrics own the guarded observation
	// types; their declarations are the implementation, not a leak.
	ownerPkg := pass.Pkg != nil &&
		(pathMatches(pass.Pkg.Path(), "internal/trace") ||
			pathMatches(pass.Pkg.Path(), "internal/metrics"))
	for _, f := range pass.Files {
		if !ownerPkg {
			checkGlobalSinks(pass, f)
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isParCall(pass, call) {
				return true
			}
			for _, arg := range call.Args {
				lit, ok := arg.(*ast.FuncLit)
				if !ok {
					continue
				}
				checkClosure(pass, lit)
			}
			return true
		})
	}
	return nil
}

// checkGlobalSinks reports package-level variables of a guarded trace type.
// A package-global sink is shared by construction — every run and every par
// worker would emit into it — so it can never satisfy the per-run contract.
func checkGlobalSinks(pass *Pass, f *ast.File) {
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.VAR {
			continue
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for _, name := range vs.Names {
				v, ok := pass.TypesInfo.Defs[name].(*types.Var)
				if !ok {
					continue
				}
				switch {
				case isTraceType(v.Type()):
					pass.Reportf(name.Pos(), "package-level trace sink %s %q: sinks are per-run state threaded through the run's job/config, never package globals (determinism contract, see docs/TRACING.md)",
						sharedTypeName(v.Type()), name.Name)
				case isMetricsType(v.Type()):
					pass.Reportf(name.Pos(), "package-level metrics registry %s %q: registries are per-run state attached through Options.Metrics, never package globals (determinism contract, see docs/METRICS.md)",
						sharedTypeName(v.Type()), name.Name)
				}
			}
		}
	}
}

// isParCall reports whether call invokes one of internal/par's fan-out
// functions.
func isParCall(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !parFuncs[sel.Sel.Name] {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	return pathMatches(fn.Pkg().Path(), "internal/par")
}

// checkClosure reports every use inside lit of a guarded-typed variable
// declared outside it.
func checkClosure(pass *Pass, lit *ast.FuncLit) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := pass.TypesInfo.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		// Declared inside the closure (parameter or local) is fine;
		// only captures of enclosing state are per-job leaks.
		if v.Pos() >= lit.Pos() && v.Pos() < lit.End() {
			return true
		}
		if name := sharedTypeName(v.Type()); name != "" {
			hint := "sim.NewRNG(sim.StreamSeed(seed, uint64(i)))"
			switch {
			case isTraceType(v.Type()):
				hint = "trace.NewSink(trace.NewCounters(), nil), merged in index order after the join"
			case isMetricsType(v.Type()):
				hint = "metrics.NewRegistry(), merged in index order after the join"
			case isFaultType(v.Type()):
				hint = "fault.NewInjector(plan, sim.StreamSeed(seed, fault.StreamCluster))"
			case isFleetType(v.Type()):
				hint = "decide placement sequentially before the fan-out and pass immutable launch specs into the closure"
			case isObsType(v.Type()):
				hint = "build a job-local trace.NewEvents ring inside the closure and merge it into the timeline/log in batch order after the join"
			case isSchedType(v.Type()):
				hint = "derive the policy from the job's kernel inside the closure and seed its state per run: k.Sched().NewState(sim.StreamSeed(seed, sched.StreamState))"
			}
			pass.Reportf(id.Pos(), "par closure captures %s %q from an enclosing scope: per-job state must be derived inside the job — %s — or worker scheduling leaks into the results (determinism contract, see docs/LINTING.md)",
				name, id.Name, hint)
		}
		return true
	})
}

// guardedNamed resolves t (or its pointee) to a guarded named type,
// returning the type, its group index, and whether t was a pointer.
func guardedNamed(t types.Type) (named *types.Named, group int, ptr bool) {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
		ptr = true
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return nil, -1, false
	}
	for gi, g := range sharedTypeGroups {
		if g.names[n.Obj().Name()] && pathMatches(n.Obj().Pkg().Path(), g.pkg) {
			return n, gi, ptr
		}
	}
	return nil, -1, false
}

// sharedTypeName returns the display name ("*sim.RNG", "*trace.Sink") if t
// is — or points to — one of the guarded types, else "".
func sharedTypeName(t types.Type) string {
	named, gi, ptr := guardedNamed(t)
	if named == nil {
		return ""
	}
	prefix := ""
	if ptr {
		prefix = "*"
	}
	return prefix + sharedTypeGroups[gi].disp + "." + named.Obj().Name()
}

// isTraceType reports whether t is — or points to — a guarded
// internal/trace type.
func isTraceType(t types.Type) bool {
	_, gi, _ := guardedNamed(t)
	return gi >= 0 && sharedTypeGroups[gi].pkg == "internal/trace"
}

// isMetricsType reports whether t is — or points to — a guarded
// internal/metrics type.
func isMetricsType(t types.Type) bool {
	_, gi, _ := guardedNamed(t)
	return gi >= 0 && sharedTypeGroups[gi].pkg == "internal/metrics"
}

// isFaultType reports whether t is — or points to — a guarded
// internal/fault type.
func isFaultType(t types.Type) bool {
	_, gi, _ := guardedNamed(t)
	return gi >= 0 && sharedTypeGroups[gi].pkg == "internal/fault"
}

// isFleetType reports whether t is — or points to — a guarded
// internal/fleet type.
func isFleetType(t types.Type) bool {
	_, gi, _ := guardedNamed(t)
	return gi >= 0 && sharedTypeGroups[gi].pkg == "internal/fleet"
}

// isObsType reports whether t is — or points to — a guarded internal/obs
// type.
func isObsType(t types.Type) bool {
	_, gi, _ := guardedNamed(t)
	return gi >= 0 && sharedTypeGroups[gi].pkg == "internal/obs"
}

// isSchedType reports whether t is — or points to — a guarded
// internal/sched type.
func isSchedType(t types.Type) bool {
	_, gi, _ := guardedNamed(t)
	return gi >= 0 && sharedTypeGroups[gi].pkg == "internal/sched"
}
