package analysis

import (
	"go/ast"
	"go/types"
)

// forbiddenTimeFuncs are the package-level functions of the time package
// that observe the wall clock, block on it, or arm timers against it. Pure
// data such as time.Duration and the unit constants remain allowed: they
// are inert values and occasionally useful for config parsing.
var forbiddenTimeFuncs = map[string]string{
	"Now":       "virtual time must come from sim.Engine.Now",
	"Since":     "durations must be computed from sim.Time values",
	"Until":     "durations must be computed from sim.Time values",
	"Sleep":     "blocking must use sim.Proc.Sleep on virtual time",
	"After":     "timers must be sim.Engine.After events",
	"AfterFunc": "timers must be sim.Engine.After events",
	"NewTimer":  "timers must be sim.Engine.After events",
	"NewTicker": "periodic work must be rescheduled sim.Engine events",
	"Tick":      "periodic work must be rescheduled sim.Engine events",
}

// NoWallTime forbids wall-clock access in simulation code. A simulated run
// must be a pure function of (model, seed); any time.Now or timer smuggles
// host scheduling noise into results — precisely the OS-noise effect the
// harness exists to model deliberately, not absorb accidentally.
var NoWallTime = &Analyzer{
	Name: "nowalltime",
	Doc: "forbid time.Now/Since/Sleep and timer constructors in simulation " +
		"packages; use the sim package's virtual clock instead",
	Run: runNoWallTime,
}

func runNoWallTime(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := pass.TypesInfo.Uses[sel.Sel]
			if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "time" {
				return true
			}
			if _, isFunc := obj.(*types.Func); !isFunc {
				return true
			}
			hint, forbidden := forbiddenTimeFuncs[obj.Name()]
			if !forbidden {
				return true
			}
			pass.Reportf(sel.Pos(), "use of time.%s is forbidden in simulation code: %s (determinism contract, see docs/LINTING.md)",
				obj.Name(), hint)
			return true
		})
	}
	return nil
}
