package analysis

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"maps"
	"slices"
	"sort"
)

// SeedFlow enforces seed-derivation hygiene interprocedurally. The
// determinism contract does not just require *a* deterministic stream — it
// requires streams that are statistically independent, which ad-hoc seed
// arithmetic silently breaks: base+i*prime seeds are nearby states of the
// same SplitMix64 sequence (the exact correlated-repetition bug PR 2 fixed
// by hand), seed^mix collides across families, and one seed handed to two
// constructors yields the same stream twice. sim.StreamSeed is the one
// sanctioned derivation.
//
// The analyzer is fact-based: a function whose parameter flows into
// sim.NewRNG or the base argument of sim.StreamSeed — directly or through
// any chain of calls — exports a fact marking that parameter as a seed
// sink, so a call in any importing package is checked against the same
// rules as a direct sim.NewRNG call. Likewise a function that draws from a
// *sim.RNG parameter exports a fact, so handing one generator to two
// drawing helpers is visible across package boundaries.
//
// Four rules:
//
//  1. ad-hoc seed arithmetic: any non-constant arithmetic expression in a
//     seed position (sim.NewRNG's argument, sim.StreamSeed's base, a
//     fact-marked parameter). The base+i*prime shape carries a
//     machine-applicable fix rewriting it to sim.StreamSeed(base, uint64(i)).
//  2. seed reuse: one seed variable consumed by two stream constructions in
//     the same function — two sim.NewRNG calls (identical streams),
//     sim.NewRNG(s) mixed with sim.StreamSeed(s, …) (the NewRNG draw
//     sequence *is* StreamSeed(s, 0), StreamSeed(s, 1), …), or two
//     sim.StreamSeed calls with the same constant stream id.
//  3. per-job seed capture: sim.NewRNG (or a fact-marked consumer) applied
//     inside a par closure to a seed declared outside it — every job gets
//     the identical stream; derive per-job streams from the job index.
//  4. stream contexts: one *sim.RNG drawn from (directly or via fact-marked
//     callees) in two separate sibling loops — the later loop's draws
//     depend on the earlier loop's draw count, so logically independent
//     phases become coupled; each phase derives its own stream with Split.
//
// Variables that are reassigned between uses are exempt from rules 2 and 4:
// reassignment makes the value a genuinely new seed/stream.
var SeedFlow = &Analyzer{
	Name: "seedflow",
	Doc: "forbid ad-hoc seed arithmetic (base+i*prime, xor-mixing) flowing " +
		"into sim.NewRNG/sim.StreamSeed directly or through any call chain, " +
		"reuse of one seed for two streams, and one RNG drawn from in two " +
		"stream contexts; derive streams with sim.StreamSeed / RNG.Split",
	Run: runSeedFlow,
}

// seedParamsFact marks the parameters of a function that flow into a seed
// sink (sim.NewRNG, sim.StreamSeed's base, or another marked parameter).
type seedParamsFact struct{ Params []int }

func (*seedParamsFact) AFact() {}

// rngParamsFact marks the *sim.RNG parameters a function draws from.
type rngParamsFact struct{ Params []int }

func (*rngParamsFact) AFact() {}

func init() {
	RegisterFact(&seedParamsFact{})
	RegisterFact(&rngParamsFact{})
}

// rngDrawMethods are the *sim.RNG methods that consume the stream. Split
// and SplitN are deliberately absent: deriving an independent generator is
// the sanctioned way to open a new stream context.
var rngDrawMethods = map[string]bool{
	"Uint64": true, "Float64": true, "Intn": true, "Int63n": true,
	"Bool": true, "ExpFloat64": true, "NormFloat64": true,
	"LogNormal": true, "Pareto": true, "Poisson": true,
	"Perm": true, "Shuffle": true,
}

// funcSeedInfo is the in-flight fact state for one function of the package
// under analysis.
type funcSeedInfo struct {
	seedParams map[int]bool
	rngParams  map[int]bool
}

type seedFlow struct {
	pass  *Pass
	decls map[*types.Func]*ast.FuncDecl
	local map[*types.Func]*funcSeedInfo
}

func runSeedFlow(pass *Pass) error {
	sf := &seedFlow{
		pass:  pass,
		decls: map[*types.Func]*ast.FuncDecl{},
		local: map[*types.Func]*funcSeedInfo{},
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			sf.decls[fn] = fd
			sf.local[fn] = &funcSeedInfo{seedParams: map[int]bool{}, rngParams: map[int]bool{}}
		}
	}
	sf.fixpoint()
	if err := sf.exportFacts(); err != nil {
		return err
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				sf.checkBody(fd)
			}
		}
	}
	return nil
}

// fixpoint propagates seed/rng parameter marks through intra-package call
// chains (including mutual recursion) until stable. Cross-package calls
// consult facts exported by earlier passes; packages arrive in dependency
// order, so those are already sealed.
func (sf *seedFlow) fixpoint() {
	for changed := true; changed; {
		changed = false
		for fn, fd := range sf.decls {
			if sf.markParams(fn, fd) {
				changed = true
			}
		}
	}
}

// markParams scans one function body and marks parameters that reach a seed
// sink or are drawn from, reporting whether anything new was learned.
func (sf *seedFlow) markParams(fn *types.Func, fd *ast.FuncDecl) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	paramIndex := map[*types.Var]int{}
	for i := 0; i < sig.Params().Len(); i++ {
		paramIndex[sig.Params().At(i)] = i
	}
	info := sf.local[fn]
	changed := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		seedArgs, _ := sf.seedPositions(call)
		for _, ai := range seedArgs {
			if ai >= len(call.Args) {
				continue
			}
			for _, pv := range paramUses(sf.pass.TypesInfo, call.Args[ai], paramIndex) {
				if isIntegerVar(pv) && !info.seedParams[paramIndex[pv]] {
					info.seedParams[paramIndex[pv]] = true
					changed = true
				}
			}
		}
		for _, ai := range sf.rngPositions(call) {
			if ai >= len(call.Args) {
				continue
			}
			for _, pv := range paramUses(sf.pass.TypesInfo, call.Args[ai], paramIndex) {
				if isSimRNGPtr(pv.Type()) && !info.rngParams[paramIndex[pv]] {
					info.rngParams[paramIndex[pv]] = true
					changed = true
				}
			}
		}
		// A draw method on a *sim.RNG parameter marks it directly.
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && rngDrawMethods[sel.Sel.Name] {
			if id, ok := sel.X.(*ast.Ident); ok {
				if pv, ok := sf.pass.TypesInfo.Uses[id].(*types.Var); ok {
					if pi, isParam := paramIndex[pv]; isParam && isSimRNGPtr(pv.Type()) && isSimRNGMethod(sf.pass.TypesInfo, sel) && !info.rngParams[pi] {
						info.rngParams[pi] = true
						changed = true
					}
				}
			}
		}
		return true
	})
	return changed
}

// exportFacts publishes the non-empty marks for importing packages.
func (sf *seedFlow) exportFacts() error {
	for fn, info := range sf.local {
		if len(info.seedParams) > 0 {
			if err := sf.pass.ExportObjectFact(fn, &seedParamsFact{Params: sortedKeys(info.seedParams)}); err != nil {
				return err
			}
		}
		if len(info.rngParams) > 0 {
			if err := sf.pass.ExportObjectFact(fn, &rngParamsFact{Params: sortedKeys(info.rngParams)}); err != nil {
				return err
			}
		}
	}
	return nil
}

func sortedKeys(m map[int]bool) []int {
	return slices.Sorted(maps.Keys(m))
}

// seedKind distinguishes the two consumption shapes for the reuse rule.
type seedKind int

const (
	seedDirect seedKind = iota // sim.NewRNG / fact-marked parameter
	seedBase                   // sim.StreamSeed base argument
)

// seedPositions returns the argument indices of call that are seed
// positions, and whether they are direct constructions or StreamSeed bases.
func (sf *seedFlow) seedPositions(call *ast.CallExpr) ([]int, seedKind) {
	if fn := funcFromPkg(sf.pass.TypesInfo, call.Fun, "internal/sim"); fn != nil {
		switch fn.Name() {
		case "NewRNG":
			return []int{0}, seedDirect
		case "StreamSeed":
			return []int{0}, seedBase
		}
		// Other sim functions (NewEngine, …) fall through to the fact
		// lookup like any module function.
	}
	fn := calleeFunc(sf.pass.TypesInfo, call)
	if fn == nil {
		return nil, seedDirect
	}
	if info, ok := sf.local[fn]; ok {
		return sortedKeys(info.seedParams), seedDirect
	}
	var fact seedParamsFact
	if sf.pass.ImportObjectFact(fn, &fact) {
		return fact.Params, seedDirect
	}
	return nil, seedDirect
}

// rngPositions returns the argument indices of call through which a
// *sim.RNG would be drawn from by the callee.
func (sf *seedFlow) rngPositions(call *ast.CallExpr) []int {
	fn := calleeFunc(sf.pass.TypesInfo, call)
	if fn == nil {
		return nil
	}
	if info, ok := sf.local[fn]; ok {
		return sortedKeys(info.rngParams)
	}
	var fact rngParamsFact
	if sf.pass.ImportObjectFact(fn, &fact) {
		return fact.Params
	}
	return nil
}

// calleeFunc resolves the called function or method, if statically known.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch e := call.Fun.(type) {
	case *ast.SelectorExpr:
		obj = info.Uses[e.Sel]
	case *ast.Ident:
		obj = info.Uses[e]
	default:
		return nil
	}
	fn, _ := obj.(*types.Func)
	return fn
}

// paramUses returns the parameters of paramIndex referenced anywhere inside
// expr.
func paramUses(info *types.Info, expr ast.Expr, paramIndex map[*types.Var]int) []*types.Var {
	var out []*types.Var
	seen := map[*types.Var]bool{}
	ast.Inspect(expr, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if v, ok := info.Uses[id].(*types.Var); ok {
			if _, isParam := paramIndex[v]; isParam && !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
		return true
	})
	return out
}

func isIntegerVar(v *types.Var) bool {
	basic, ok := v.Type().Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsInteger != 0
}

// isSimRNGPtr reports whether t is *sim.RNG.
func isSimRNGPtr(t types.Type) bool {
	p, ok := t.Underlying().(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := p.Elem().(*types.Named)
	return ok && named.Obj().Name() == "RNG" && named.Obj().Pkg() != nil &&
		pathMatches(named.Obj().Pkg().Path(), "internal/sim")
}

// isSimRNGMethod reports whether sel resolves to a method of sim.RNG.
func isSimRNGMethod(info *types.Info, sel *ast.SelectorExpr) bool {
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "RNG" && named.Obj().Pkg() != nil &&
		pathMatches(named.Obj().Pkg().Path(), "internal/sim")
}

// --- per-function body checks ---

// seedUse is one consumption of a seed variable.
type seedUse struct {
	obj       *types.Var
	kind      seedKind
	streamVal constant.Value // constant stream id for StreamSeed, else nil
	pos       token.Pos
	desc      string
}

// drawSite is one draw from an RNG variable.
type drawSite struct {
	obj  *types.Var
	pos  token.Pos
	loop ast.Node // outermost enclosing loop within the function, or nil
}

func (sf *seedFlow) checkBody(fd *ast.FuncDecl) {
	info := sf.pass.TypesInfo
	var (
		uses     []seedUse
		draws    []drawSite
		assigned = map[*types.Var]bool{}
		stack    []ast.Node
	)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					if v, ok := info.Uses[id].(*types.Var); ok {
						assigned[v] = true
					}
				}
			}
		case *ast.IncDecStmt:
			if id, ok := n.X.(*ast.Ident); ok {
				if v, ok := info.Uses[id].(*types.Var); ok {
					assigned[v] = true
				}
			}
		case *ast.CallExpr:
			sf.checkCall(fd, n, stack, &uses, &draws)
		}
		return true
	})

	sf.checkReuse(uses, assigned)
	sf.checkStreamContexts(draws, assigned)
}

// checkCall handles one call expression: ad-hoc arithmetic in seed
// positions, seed-consumption recording, par-closure seed capture, and draw
// recording.
func (sf *seedFlow) checkCall(fd *ast.FuncDecl, call *ast.CallExpr, stack []ast.Node, uses *[]seedUse, draws *[]drawSite) {
	info := sf.pass.TypesInfo
	seedArgs, kind := sf.seedPositions(call)
	for _, ai := range seedArgs {
		if ai >= len(call.Args) {
			continue
		}
		arg := call.Args[ai]
		sf.checkAdhocArith(call, arg)
		core := unwrapConversions(info, arg)
		id, ok := core.(*ast.Ident)
		if !ok {
			continue
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			continue
		}
		var streamVal constant.Value
		if kind == seedBase && len(call.Args) > 1 {
			if tv, ok := info.Types[call.Args[1]]; ok {
				streamVal = tv.Value
			}
		}
		*uses = append(*uses, seedUse{
			obj: v, kind: kind, streamVal: streamVal,
			pos: arg.Pos(), desc: callDesc(call),
		})
		if kind == seedDirect {
			sf.checkParClosureSeed(call, v, stack)
		}
	}
	// Draws: rng.Method() on a *sim.RNG variable, and rng handed to a
	// fact-marked drawing callee.
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok && rngDrawMethods[sel.Sel.Name] && isSimRNGMethod(info, sel) {
		if id, ok := sel.X.(*ast.Ident); ok {
			if v, ok := info.Uses[id].(*types.Var); ok && isSimRNGPtr(v.Type()) {
				sf.recordDraw(v, sel.Pos(), stack, draws)
			}
		}
	}
	for _, ai := range sf.rngPositions(call) {
		if ai >= len(call.Args) {
			continue
		}
		if id, ok := unwrapConversions(info, call.Args[ai]).(*ast.Ident); ok {
			if v, ok := info.Uses[id].(*types.Var); ok && isSimRNGPtr(v.Type()) {
				sf.recordDraw(v, call.Args[ai].Pos(), stack, draws)
			}
		}
	}
}

// recordDraw registers a draw site with its outermost enclosing loop.
// Draws inside function literals are skipped: closures are parshare's and
// rule 3's domain, and attributing them to the outer function's loop
// structure would mislabel the context.
func (sf *seedFlow) recordDraw(v *types.Var, pos token.Pos, stack []ast.Node, draws *[]drawSite) {
	var loop ast.Node
	for _, n := range stack[:len(stack)-1] {
		switch n.(type) {
		case *ast.FuncLit:
			return
		case *ast.ForStmt, *ast.RangeStmt:
			if loop == nil {
				loop = n
			}
		}
	}
	*draws = append(*draws, drawSite{obj: v, pos: pos, loop: loop})
}

// checkParClosureSeed reports a seed declared outside a par closure being
// consumed inside it: every job would construct the identical stream.
func (sf *seedFlow) checkParClosureSeed(call *ast.CallExpr, v *types.Var, stack []ast.Node) {
	for i := len(stack) - 2; i >= 0; i-- {
		lit, ok := stack[i].(*ast.FuncLit)
		if !ok {
			continue
		}
		if i == 0 {
			return
		}
		parent, ok := stack[i-1].(*ast.CallExpr)
		if !ok || !isParCall(sf.pass, parent) {
			continue
		}
		if v.Pos() >= lit.Pos() && v.Pos() < lit.End() {
			return // declared inside the closure: per-job, fine
		}
		sf.pass.Reportf(call.Pos(),
			"seed %q is consumed inside a par closure but declared outside it: every job constructs the identical stream; derive a per-job seed with sim.StreamSeed(%s, uint64(i)) (determinism contract, see docs/LINTING.md)",
			v.Name(), v.Name())
		return
	}
}

// checkAdhocArith flags non-constant arithmetic in a seed position and,
// for the base+i*prime shape at a direct sim call, attaches the
// StreamSeed rewrite as a machine-applicable fix.
func (sf *seedFlow) checkAdhocArith(call *ast.CallExpr, arg ast.Expr) {
	info := sf.pass.TypesInfo
	core := unwrapConversions(info, arg)
	bin, ok := core.(*ast.BinaryExpr)
	if !ok || !arithmeticOp(bin.Op) {
		return
	}
	if tv, ok := info.Types[core]; ok && tv.Value != nil {
		return // fully constant: a fixed literal seed, not index arithmetic
	}
	msg := fmt.Sprintf(
		"ad-hoc seed arithmetic %s in a seed position of %s: derived seeds land on nearby states of the same SplitMix64 sequence, correlating the streams; derive sub-streams with sim.StreamSeed(base, stream) (determinism contract, see docs/LINTING.md)",
		exprString(core), callDesc(call))
	if base, index, ok := streamSeedShape(info, bin); ok {
		if qual := simQualifier(sf.pass, call); qual != "" {
			fix := fmt.Sprintf("%s.StreamSeed(%s, uint64(%s))", qual, exprString(base), exprString(index))
			sf.pass.ReportFix(arg.Pos(),
				"rewrite to "+fix,
				[]TextEdit{{Pos: arg.Pos(), End: arg.End(), NewText: fix}},
				"%s", msg)
			return
		}
	}
	sf.pass.Reportf(arg.Pos(), "%s", msg)
}

// streamSeedShape recognizes base+i*prime (in any operand order) and
// returns the base and index expressions.
func streamSeedShape(info *types.Info, bin *ast.BinaryExpr) (base, index ast.Expr, ok bool) {
	if bin.Op != token.ADD {
		return nil, nil, false
	}
	classify := func(e ast.Expr) (ast.Expr, bool) {
		// i*prime or prime*i with exactly one constant factor; or a bare
		// non-constant identifier.
		if mul, isMul := e.(*ast.BinaryExpr); isMul && mul.Op == token.MUL {
			xc := isConstExpr(info, mul.X)
			yc := isConstExpr(info, mul.Y)
			if xc != yc {
				if xc {
					return mul.Y, true
				}
				return mul.X, true
			}
			return nil, false
		}
		return e, true
	}
	left, right := bin.X, bin.Y
	lIdx, lOK := classify(left)
	rIdx, rOK := classify(right)
	switch {
	case isPlainRef(left) && rOK && !isConstExpr(info, right):
		return left, unwrapConversions(info, rIdx), true
	case isPlainRef(right) && lOK && !isConstExpr(info, left):
		return right, unwrapConversions(info, lIdx), true
	}
	return nil, nil, false
}

func isConstExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.Value != nil
}

// isPlainRef reports whether e is an identifier or selector chain —
// something exprString can render back losslessly for a fix.
func isPlainRef(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.Ident:
		return true
	case *ast.SelectorExpr:
		return isPlainRef(e.X)
	}
	return false
}

// simQualifier returns the package qualifier under which the sim package is
// referenced by this call (normally "sim"), or "" when the call does not go
// through a package selector — in which case a fix cannot safely name sim.
func simQualifier(pass *Pass, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	if fn := funcFromPkg(pass.TypesInfo, call.Fun, "internal/sim"); fn == nil {
		return ""
	}
	if id, ok := sel.X.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

func arithmeticOp(op token.Token) bool {
	switch op {
	case token.ADD, token.SUB, token.MUL, token.QUO, token.REM,
		token.XOR, token.OR, token.AND, token.AND_NOT, token.SHL, token.SHR:
		return true
	}
	return false
}

// unwrapConversions strips parentheses and type conversions so uint64(x)
// and (x) expose x.
func unwrapConversions(info *types.Info, e ast.Expr) ast.Expr {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.CallExpr:
			if len(x.Args) == 1 {
				if tv, ok := info.Types[x.Fun]; ok && tv.IsType() {
					e = x.Args[0]
					continue
				}
			}
			return e
		default:
			return e
		}
	}
}

func callDesc(call *ast.CallExpr) string {
	return exprString(call.Fun) + "(...)"
}

// checkReuse applies rule 2 over the consumption record of one function.
func (sf *seedFlow) checkReuse(uses []seedUse, assigned map[*types.Var]bool) {
	byObj := map[*types.Var][]seedUse{}
	var order []*types.Var
	for _, u := range uses {
		if assigned[u.obj] {
			continue // reassigned between uses: a genuinely new value
		}
		if _, ok := byObj[u.obj]; !ok {
			order = append(order, u.obj)
		}
		byObj[u.obj] = append(byObj[u.obj], u)
	}
	for _, obj := range order {
		us := byObj[obj]
		sort.Slice(us, func(i, j int) bool { return us[i].pos < us[j].pos })
		var firstDirect, firstBase *seedUse
		for i := range us {
			u := &us[i]
			switch u.kind {
			case seedDirect:
				if firstDirect != nil {
					sf.pass.Reportf(u.pos,
						"seed %q already constructs a stream at %s via %s: two streams from one seed are identical; derive independent sub-streams with sim.StreamSeed(%s, k) (determinism contract, see docs/LINTING.md)",
						obj.Name(), sf.pass.Fset.Position(firstDirect.pos), firstDirect.desc, obj.Name())
					continue
				}
				firstDirect = u
				if firstBase != nil {
					sf.pass.Reportf(u.pos,
						"seed %q is used both as a sim.StreamSeed base (at %s) and to construct a stream directly: sim.NewRNG(%s)'s draw sequence is exactly StreamSeed(%s, 0), StreamSeed(%s, 1), …, so the streams overlap; use StreamSeed-derived seeds for both (determinism contract, see docs/LINTING.md)",
						obj.Name(), sf.pass.Fset.Position(firstBase.pos), obj.Name(), obj.Name(), obj.Name())
				}
			case seedBase:
				if firstBase == nil {
					firstBase = u
					if firstDirect != nil {
						sf.pass.Reportf(u.pos,
							"seed %q is used both to construct a stream directly (at %s) and as a sim.StreamSeed base: sim.NewRNG(%s)'s draw sequence is exactly StreamSeed(%s, 0), StreamSeed(%s, 1), …, so the streams overlap; use StreamSeed-derived seeds for both (determinism contract, see docs/LINTING.md)",
							obj.Name(), sf.pass.Fset.Position(firstDirect.pos), obj.Name(), obj.Name(), obj.Name())
					}
				}
			}
		}
		// Two StreamSeed calls with the same constant stream id.
		seenStreams := map[string]*seedUse{}
		for i := range us {
			u := &us[i]
			if u.kind != seedBase || u.streamVal == nil {
				continue
			}
			key := u.streamVal.ExactString()
			if prev, dup := seenStreams[key]; dup {
				sf.pass.Reportf(u.pos,
					"sim.StreamSeed(%s, %s) repeats the derivation at %s: the same sub-stream seeds two generators; use distinct stream ids (determinism contract, see docs/LINTING.md)",
					obj.Name(), key, sf.pass.Fset.Position(prev.pos))
			} else {
				seenStreams[key] = u
			}
		}
	}
}

// checkStreamContexts applies rule 4: one RNG drawn from in two sibling
// loops couples logically independent phases.
func (sf *seedFlow) checkStreamContexts(draws []drawSite, assigned map[*types.Var]bool) {
	byObj := map[*types.Var][]drawSite{}
	var order []*types.Var
	for _, d := range draws {
		if d.loop == nil || assigned[d.obj] {
			continue
		}
		if _, ok := byObj[d.obj]; !ok {
			order = append(order, d.obj)
		}
		byObj[d.obj] = append(byObj[d.obj], d)
	}
	for _, obj := range order {
		ds := byObj[obj]
		sort.Slice(ds, func(i, j int) bool { return ds[i].pos < ds[j].pos })
		firstLoop := ds[0].loop
		for _, d := range ds[1:] {
			if d.loop != firstLoop {
				sf.pass.Reportf(d.pos,
					"RNG %q is drawn from in a second loop (first context at %s): this phase's draws depend on how many draws the earlier loop made, coupling logically independent streams; give each phase its own generator — %s.Split() or sim.NewRNG(sim.StreamSeed(seed, phase)) (determinism contract, see docs/LINTING.md)",
					obj.Name(), sf.pass.Fset.Position(ds[0].pos), obj.Name())
				break
			}
		}
	}
}
