package analysis

import (
	"go/token"
	"testing"
)

func TestApplyEditsWidensStandaloneDeletion(t *testing.T) {
	src := []byte("a\n\t//mklint:ignore maprange x\nb\n")
	start := 2 // the tab before the comment is whitespace
	end := start + 1 + len("//mklint:ignore maprange x")
	out, skipped, err := applyEdits(src, []Edit{{Start: start + 1, End: end, NewText: ""}})
	if err != nil || skipped != 0 {
		t.Fatalf("applyEdits: skipped=%d err=%v", skipped, err)
	}
	if got, want := string(out), "a\nb\n"; got != want {
		t.Errorf("deletion not widened to the whole line: got %q, want %q", got, want)
	}
}

func TestApplyEditsKeepsTrailingDeletionNarrow(t *testing.T) {
	src := []byte("code() //mklint:ignore maprange x\nb\n")
	start := len("code() ")
	end := len("code() //mklint:ignore maprange x")
	out, skipped, err := applyEdits(src, []Edit{{Start: start, End: end, NewText: ""}})
	if err != nil || skipped != 0 {
		t.Fatalf("applyEdits: skipped=%d err=%v", skipped, err)
	}
	if got, want := string(out), "code() \nb\n"; got != want {
		t.Errorf("trailing deletion must not eat the code line: got %q, want %q", got, want)
	}
}

func TestApplyEditsSkipsOverlaps(t *testing.T) {
	src := []byte("abcdef")
	out, skipped, err := applyEdits(src, []Edit{
		{Start: 1, End: 4, NewText: "X"},
		{Start: 3, End: 5, NewText: "Y"}, // overlaps the first: dropped
	})
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 1 {
		t.Errorf("skipped = %d, want 1", skipped)
	}
	if got, want := string(out), "aXef"; got != want {
		t.Errorf("got %q, want %q", got, want)
	}
}

func TestDedupeDropsIdenticalDiagnostics(t *testing.T) {
	pos := token.Position{Filename: "x.go", Line: 4, Column: 2}
	diags := []Diagnostic{
		{Pos: pos, Analyzer: "floatorder", Message: "same finding"},
		{Pos: pos, Analyzer: "maprange", Message: "same finding"},
		{Pos: pos, Analyzer: "maprange", Message: "different finding"},
		{Pos: token.Position{Filename: "x.go", Line: 9, Column: 2}, Analyzer: "maprange", Message: "same finding"},
	}
	sortDiagnostics(diags)
	out := dedupe(diags)
	if len(out) != 3 {
		t.Fatalf("dedupe kept %d diagnostics, want 3: %v", len(out), out)
	}
	// Sorted order ties on position break by analyzer name, so the first
	// reporter wins deterministically.
	if out[0].Analyzer != "floatorder" {
		t.Errorf("first reporter at the shared position = %s, want floatorder", out[0].Analyzer)
	}
}
