package analysis_test

import (
	"bytes"
	"encoding/json"
	"go/token"
	"strings"
	"testing"

	"mklite/internal/analysis"
)

// sarifDoc mirrors the SARIF 2.1.0 fields mklint emits; decoding the output
// into it (and cross-checking rule indices) is the validity test.
type sarifDoc struct {
	Schema  string `json:"$schema"`
	Version string `json:"version"`
	Runs    []struct {
		Tool struct {
			Driver struct {
				Name  string `json:"name"`
				Rules []struct {
					ID               string `json:"id"`
					ShortDescription struct {
						Text string `json:"text"`
					} `json:"shortDescription"`
				} `json:"rules"`
			} `json:"driver"`
		} `json:"tool"`
		Results []struct {
			RuleID    string `json:"ruleId"`
			RuleIndex int    `json:"ruleIndex"`
			Level     string `json:"level"`
			Message   struct {
				Text string `json:"text"`
			} `json:"message"`
			Locations []struct {
				PhysicalLocation struct {
					ArtifactLocation struct {
						URI string `json:"uri"`
					} `json:"artifactLocation"`
					Region struct {
						StartLine   int `json:"startLine"`
						StartColumn int `json:"startColumn"`
					} `json:"region"`
				} `json:"physicalLocation"`
			} `json:"locations"`
		} `json:"results"`
	} `json:"runs"`
}

func TestWriteSARIF(t *testing.T) {
	diags := []analysis.Diagnostic{
		{
			Pos:      token.Position{Filename: "/mod/internal/sim/rng.go", Line: 12, Column: 7},
			Analyzer: "seedflow",
			Message:  "ad-hoc seed arithmetic",
		},
		{
			Pos:      token.Position{Filename: "/elsewhere/x.go", Line: 3, Column: 1},
			Analyzer: "maprange",
			Message:  "iteration over map",
		},
	}
	var buf bytes.Buffer
	if err := analysis.WriteSARIF(&buf, "/mod", analysis.All(), diags); err != nil {
		t.Fatal(err)
	}
	var doc sarifDoc
	dec := json.NewDecoder(bytes.NewReader(buf.Bytes()))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&doc); err != nil {
		t.Fatalf("output is not the declared SARIF shape: %v\n%s", err, buf.String())
	}
	if doc.Version != "2.1.0" || !strings.Contains(doc.Schema, "sarif-schema-2.1.0") {
		t.Errorf("version/schema = %q / %q, want SARIF 2.1.0", doc.Version, doc.Schema)
	}
	if len(doc.Runs) != 1 {
		t.Fatalf("got %d runs, want 1", len(doc.Runs))
	}
	run := doc.Runs[0]
	if run.Tool.Driver.Name != "mklint" {
		t.Errorf("driver name = %q, want mklint", run.Tool.Driver.Name)
	}
	if len(run.Tool.Driver.Rules) != len(analysis.All()) {
		t.Errorf("got %d rules, want one per analyzer (%d)", len(run.Tool.Driver.Rules), len(analysis.All()))
	}
	if len(run.Results) != 2 {
		t.Fatalf("got %d results, want 2", len(run.Results))
	}
	for i, r := range run.Results {
		if r.Level != "error" {
			t.Errorf("result %d level = %q, want error", i, r.Level)
		}
		if r.RuleIndex < 0 || r.RuleIndex >= len(run.Tool.Driver.Rules) {
			t.Fatalf("result %d ruleIndex %d out of range", i, r.RuleIndex)
		}
		if got := run.Tool.Driver.Rules[r.RuleIndex].ID; got != r.RuleID {
			t.Errorf("result %d ruleIndex points at rule %q, want %q", i, got, r.RuleID)
		}
		if len(r.Locations) != 1 {
			t.Fatalf("result %d has %d locations, want 1", i, len(r.Locations))
		}
	}
	first := run.Results[0].Locations[0].PhysicalLocation
	if first.ArtifactLocation.URI != "internal/sim/rng.go" {
		t.Errorf("in-module URI = %q, want relative forward-slashed internal/sim/rng.go", first.ArtifactLocation.URI)
	}
	if first.Region.StartLine != 12 || first.Region.StartColumn != 7 {
		t.Errorf("region = %+v, want 12:7", first.Region)
	}
	second := run.Results[1].Locations[0].PhysicalLocation
	if second.ArtifactLocation.URI != "/elsewhere/x.go" {
		t.Errorf("out-of-module URI = %q, want absolute /elsewhere/x.go", second.ArtifactLocation.URI)
	}
}
