package analysis

import (
	"go/ast"
	"go/types"
)

// randPackages are the import paths whose package-level functions draw from
// process-global (or otherwise seed-uncontrolled) generators.
var randPackages = map[string]bool{
	"math/rand":    true,
	"math/rand/v2": true,
}

// NoGlobalRand forbids math/rand in favour of sim.RNG. The global source is
// process-wide mutable state: it seeds differently across runs (rand/v2) or
// is shared across goroutines behind a lock (rand), and either way the
// stream cannot be split per rank. sim.RNG is seeded from the run seed and
// forked with Split, keeping every rank's stream reproducible.
//
// The analyzer flags every reference to a package-level function of
// math/rand or math/rand/v2 — which covers both direct draws (rand.Intn)
// and local-generator construction (rand.New(rand.NewSource(seed))), since
// New and NewSource are themselves package-level functions.
var NoGlobalRand = &Analyzer{
	Name: "noglobalrand",
	Doc: "forbid math/rand and math/rand/v2 package-level functions " +
		"(including rand.New(rand.NewSource(...))); use sim.RNG streams " +
		"derived from the run seed",
	Run: runNoGlobalRand,
}

func runNoGlobalRand(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := pass.TypesInfo.Uses[sel.Sel]
			if obj == nil || obj.Pkg() == nil || !randPackages[obj.Pkg().Path()] {
				return true
			}
			fn, isFunc := obj.(*types.Func)
			if !isFunc {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				// Methods on an explicitly constructed *rand.Rand are
				// reached only via rand.New, which is already flagged
				// at the construction site.
				return true
			}
			pass.Reportf(sel.Pos(), "use of %s.%s is forbidden: randomness must come from sim.RNG streams derived from the run seed (determinism contract, see docs/LINTING.md)",
				obj.Pkg().Path(), obj.Name())
			return true
		})
	}
	return nil
}
