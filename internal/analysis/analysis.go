// Package analysis implements mklint, mklite's custom determinism-analyzer
// suite. The simulation core promises that a run is a pure function of
// (model, seed): no wall-clock reads, no global random state, no bare
// goroutines in model code, no observable map-iteration order, no ad-hoc
// seed derivation. Package analysis enforces that contract mechanically
// with a fact-based static-analysis framework modelled on
// golang.org/x/tools/go/analysis, but built purely on the standard library
// (go/ast, go/types, and `go list -export` data) so the module stays
// dependency-free.
//
// The analyzers are:
//
//   - nowalltime:   forbids time.Now, time.Since, time.Sleep and friends —
//     virtual time must come from sim.Engine.Now / sim.Proc.Sleep.
//   - noglobalrand: forbids math/rand and math/rand/v2 package-level
//     functions and rand.New(rand.NewSource(...)) — randomness must come
//     from sim.RNG streams derived from the run seed.
//   - maprange:     flags `range` over a map whose body has order-dependent
//     effects (slice appends, float accumulation, output writes, event
//     scheduling) — iteration order would leak into results.
//   - nogoroutine:  forbids bare `go` statements everywhere except
//     internal/par, the sanctioned worker-pool fan-out; model concurrency
//     must use the cooperative sim.Proc abstraction.
//   - parshare:     forbids capturing a *sim.RNG (or sim.Engine/sim.Proc)
//     across a par.Map closure — per-job streams must be derived inside
//     each job from (seed, index) with sim.StreamSeed.
//   - seedflow:     fact-based, interprocedural seed hygiene — no ad-hoc
//     seed arithmetic flowing into sim.NewRNG/sim.StreamSeed (directly or
//     through any function whose parameter reaches them), no reuse of one
//     seed for two streams, no one RNG serving two stream contexts.
//   - floatorder:   flags order-sensitive floating-point accumulation whose
//     iteration source is a map or channel range or a par closure.
//   - errdrop:      forbids discarding the error results of module-internal
//     APIs (par.MapErr, fault.ParsePlan, trace.Validate, …).
//   - ignoreaudit:  every //mklint:ignore directive must still suppress at
//     least one live diagnostic; stale ignores are errors.
//
// A diagnostic can be suppressed with a directive comment on the same line
// or the line directly above the offending statement:
//
//	//mklint:ignore <analyzer> <reason>
//
// The reason is mandatory; a directive without one is itself reported and
// suppresses nothing. Analyzers may attach machine-applicable
// SuggestedFixes to diagnostics; the mklint -fix mode applies them. See
// docs/LINTING.md for the full contract.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one static check. The shape deliberately mirrors
// golang.org/x/tools/go/analysis.Analyzer so the suite could migrate to the
// real framework if the dependency ever becomes available.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //mklint:ignore directives.
	Name string

	// Doc is a one-paragraph description of what the analyzer enforces.
	Doc string

	// AppliesTo reports whether the analyzer should run on the package
	// with the given import path. A nil AppliesTo means every package.
	AppliesTo func(importPath string) bool

	// Run performs the check on one package, reporting findings through
	// pass.Reportf / pass.Report. It is nil for ignoreaudit, which the
	// driver runs specially after every other analyzer has finished with
	// the package.
	Run func(pass *Pass) error
}

// A Pass provides one analyzer with the parsed, type-checked source of a
// single package, a sink for diagnostics, and access to the analyzer's
// cross-package fact store.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	facts   *factStore
	ignores *ignoreIndex
	sink    func(Diagnostic)
}

// A TextEdit describes replacing the source range [Pos, End) with NewText.
// Analyzers express fixes in token.Pos terms; the pass resolves them to
// file offsets when the diagnostic is reported.
type TextEdit struct {
	Pos     token.Pos
	End     token.Pos
	NewText string
}

// An Edit is a resolved TextEdit: replace bytes [Start, End) of Filename
// with NewText. Line/column fields (1-based) locate the region for SARIF.
type Edit struct {
	Filename  string
	Start     int
	End       int
	StartLine int
	StartCol  int
	EndLine   int
	EndCol    int
	NewText   string
}

// A SuggestedFix is one machine-applicable remediation for a diagnostic:
// applying every edit (and reformatting) resolves the finding.
type SuggestedFix struct {
	Message string
	Edits   []Edit
}

// A Diagnostic is one finding, located by position, optionally carrying
// machine-applicable fixes.
type Diagnostic struct {
	Pos            token.Position
	Analyzer       string
	Message        string
	SuggestedFixes []SuggestedFix
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Reportf records a finding at pos unless a well-formed //mklint:ignore
// directive covers it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(pos, fmt.Sprintf(format, args...), nil)
}

// ReportFix is Reportf with a machine-applicable suggested fix attached.
func (p *Pass) ReportFix(pos token.Pos, fixMessage string, edits []TextEdit, format string, args ...any) {
	fix := SuggestedFix{Message: fixMessage}
	for _, e := range edits {
		fix.Edits = append(fix.Edits, p.resolveEdit(e))
	}
	p.report(pos, fmt.Sprintf(format, args...), []SuggestedFix{fix})
}

func (p *Pass) resolveEdit(e TextEdit) Edit {
	start := p.Fset.Position(e.Pos)
	end := p.Fset.Position(e.End)
	return Edit{
		Filename:  start.Filename,
		Start:     start.Offset,
		End:       end.Offset,
		StartLine: start.Line,
		StartCol:  start.Column,
		EndLine:   end.Line,
		EndCol:    end.Column,
		NewText:   e.NewText,
	}
}

func (p *Pass) report(pos token.Pos, message string, fixes []SuggestedFix) {
	position := p.Fset.Position(pos)
	if p.ignores.suppresses(p.Analyzer.Name, position) {
		return
	}
	p.sink(Diagnostic{
		Pos:            position,
		Analyzer:       p.Analyzer.Name,
		Message:        message,
		SuggestedFixes: fixes,
	})
}

// All returns the full analyzer suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		NoWallTime,
		NoGlobalRand,
		MapRange,
		NoGoroutine,
		ParShare,
		SeedFlow,
		FloatOrder,
		ErrDrop,
		IgnoreAudit,
	}
}

// An IgnoreInfo is one //mklint:ignore directive found during a run, with
// whether it suppressed at least one diagnostic (Used) — the suite-wide
// suppression inventory behind mklint -ignores.
type IgnoreInfo struct {
	Pos      token.Position
	Analyzer string
	Reason   string
	Used     bool
}

// A Result is the outcome of running a set of analyzers over a set of
// packages.
type Result struct {
	// Diagnostics are the surviving findings, sorted by position, with
	// exact duplicates (same position and message, e.g. from overlapping
	// analyzers) reported once.
	Diagnostics []Diagnostic
	// Ignores is the suppression inventory: every well-formed
	// //mklint:ignore directive seen, in position order.
	Ignores []IgnoreInfo
}

// Run applies every applicable analyzer to every package and returns the
// surviving diagnostics sorted by position. It is Analyze without the
// suppression inventory.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	res, err := Analyze(pkgs, analyzers)
	if err != nil {
		return nil, err
	}
	return res.Diagnostics, nil
}

// Analyze applies every applicable analyzer to every package. Packages must
// be in dependency order (the loader's order) so that facts exported while
// analyzing a package are available to every importing package. Malformed
// suppression directives are reported as diagnostics of the pseudo-analyzer
// "mklint"; if the ignoreaudit analyzer is in the set, stale directives are
// reported after the rest of the suite has run on each package.
func Analyze(pkgs []*Package, analyzers []*Analyzer) (*Result, error) {
	var diags []Diagnostic
	var inventory []IgnoreInfo
	stores := map[string]*factStore{}
	ranNames := map[string]bool{}
	auditIncluded := false
	for _, a := range analyzers {
		if a.Name == IgnoreAudit.Name {
			auditIncluded = true
			continue
		}
		ranNames[a.Name] = true
	}
	for _, pkg := range pkgs {
		ignores := buildIgnoreIndex(pkg.Fset, pkg.Files)
		diags = append(diags, ignores.malformed...)
		for _, a := range analyzers {
			if a.Run == nil {
				continue
			}
			if a.AppliesTo != nil && !a.AppliesTo(pkg.ImportPath) {
				continue
			}
			store := stores[a.Name]
			if store == nil {
				store = newFactStore()
				stores[a.Name] = store
			}
			store.begin(pkg.ImportPath)
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
				facts:     store,
				ignores:   ignores,
				sink:      func(d Diagnostic) { diags = append(diags, d) },
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analyzer %s on %s: %w", a.Name, pkg.ImportPath, err)
			}
			if err := store.seal(); err != nil {
				return nil, fmt.Errorf("analyzer %s on %s: %w", a.Name, pkg.ImportPath, err)
			}
		}
		// ignoreaudit runs last: by now every other analyzer has had its
		// chance to be suppressed by each directive of this package.
		if auditIncluded {
			diags = append(diags, auditPackage(pkg, ignores, ranNames)...)
		}
		for _, d := range ignores.all {
			inventory = append(inventory, IgnoreInfo{
				Pos:      d.pos,
				Analyzer: d.analyzer,
				Reason:   d.reason,
				Used:     d.used,
			})
		}
	}
	sortDiagnostics(diags)
	sort.Slice(inventory, func(i, j int) bool {
		a, b := inventory[i], inventory[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		return a.Pos.Line < b.Pos.Line
	})
	return &Result{Diagnostics: dedupe(diags), Ignores: inventory}, nil
}

func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// dedupe drops diagnostics that duplicate an earlier one at the same
// position with the same message — overlapping analyzers (or one analyzer
// reaching a site twice) should cost CI and SARIF one annotation, not two.
// The input must be sorted; the first reporter (analyzer-name order) wins.
func dedupe(diags []Diagnostic) []Diagnostic {
	type key struct {
		file      string
		line, col int
		message   string
	}
	seen := map[key]bool{}
	out := diags[:0]
	for _, d := range diags {
		k := key{d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message}
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, d)
	}
	return out
}

// ignorePrefix is the directive marker. Like all Go directives it must
// start the comment with no space after "//".
const ignorePrefix = "//mklint:ignore"

// An ignoreDirective is one parsed //mklint:ignore comment. The same
// directive value is indexed under both lines it covers, so a suppression
// on either marks it used.
type ignoreDirective struct {
	analyzer string
	reason   string
	pos      token.Position // position of the directive comment itself
	end      token.Position // end of the comment, for the deletion fix
	used     bool
}

// An ignoreIndex maps (file, line) to the directives that cover it.
type ignoreIndex struct {
	// byLine maps filename -> line -> directives covering that line.
	byLine    map[string]map[int][]*ignoreDirective
	all       []*ignoreDirective
	malformed []Diagnostic
}

// buildIgnoreIndex scans every comment in the package for //mklint:ignore
// directives. A directive covers its own source line and the next line, so
// both trailing and standalone placements work:
//
//	go p.run(fn) //mklint:ignore nogoroutine engine-managed goroutine
//
//	//mklint:ignore maprange order folded into sorted output below
//	for k := range m {
func buildIgnoreIndex(fset *token.FileSet, files []*ast.File) *ignoreIndex {
	idx := &ignoreIndex{byLine: map[string]map[int][]*ignoreDirective{}}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				pos := fset.Position(c.Pos())
				rest := strings.TrimPrefix(c.Text, ignorePrefix)
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					idx.malformed = append(idx.malformed, Diagnostic{
						Pos:      pos,
						Analyzer: "mklint",
						Message: fmt.Sprintf(
							"malformed %s directive: want %q; the reason is mandatory and the directive is ignored",
							ignorePrefix, ignorePrefix+" <analyzer> <reason>"),
					})
					continue
				}
				d := &ignoreDirective{
					analyzer: fields[0],
					reason:   strings.Join(fields[1:], " "),
					pos:      pos,
					end:      fset.Position(c.End()),
				}
				idx.all = append(idx.all, d)
				lines := idx.byLine[pos.Filename]
				if lines == nil {
					lines = map[int][]*ignoreDirective{}
					idx.byLine[pos.Filename] = lines
				}
				lines[pos.Line] = append(lines[pos.Line], d)
				lines[pos.Line+1] = append(lines[pos.Line+1], d)
			}
		}
	}
	return idx
}

// suppresses reports whether a well-formed directive for analyzer (or the
// wildcard "all") covers the position, marking the directive used.
func (idx *ignoreIndex) suppresses(analyzer string, pos token.Position) bool {
	lines := idx.byLine[pos.Filename]
	if lines == nil {
		return false
	}
	hit := false
	for _, d := range lines[pos.Line] {
		if d.analyzer == analyzer || d.analyzer == "all" {
			d.used = true
			hit = true
		}
	}
	return hit
}

// pathMatches reports whether importPath is root or lies under it, with
// root anchored at a path-segment boundary.
func pathMatches(importPath, root string) bool {
	return importPath == root ||
		strings.HasSuffix(importPath, "/"+root) ||
		strings.Contains(importPath, "/"+root+"/") ||
		strings.HasPrefix(importPath, root+"/")
}

func pathInAny(importPath string, roots []string) bool {
	for _, root := range roots {
		if pathMatches(importPath, root) {
			return true
		}
	}
	return false
}

// funcFromPkg resolves expr to a package-level *types.Func of a package
// whose import path matches pkgSuffix, returning nil otherwise. It is the
// shared "is this a call to sim.X / par.X?" helper.
func funcFromPkg(info *types.Info, fun ast.Expr, pkgSuffix string) *types.Func {
	var obj types.Object
	switch e := fun.(type) {
	case *ast.SelectorExpr:
		obj = info.Uses[e.Sel]
	case *ast.Ident:
		obj = info.Uses[e]
	default:
		return nil
	}
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil || !pathMatches(fn.Pkg().Path(), pkgSuffix) {
		return nil
	}
	return fn
}
