// Package analysis implements mklint, mklite's custom determinism-analyzer
// suite. The simulation core promises that a run is a pure function of
// (model, seed): no wall-clock reads, no global random state, no bare
// goroutines in model code, no observable map-iteration order. Package
// analysis enforces that contract mechanically with a small set of static
// analyzers modelled on golang.org/x/tools/go/analysis, but built purely on
// the standard library (go/ast, go/types, and `go list -export` data) so the
// module stays dependency-free.
//
// The five analyzers are:
//
//   - nowalltime:   forbids time.Now, time.Since, time.Sleep and friends —
//     virtual time must come from sim.Engine.Now / sim.Proc.Sleep.
//   - noglobalrand: forbids math/rand and math/rand/v2 package-level
//     functions and rand.New(rand.NewSource(...)) — randomness must come
//     from sim.RNG streams derived from the run seed.
//   - maprange:     flags `range` over a map whose body has order-dependent
//     effects (slice appends, float accumulation, output writes, event
//     scheduling) — iteration order would leak into results.
//   - nogoroutine:  forbids bare `go` statements everywhere except
//     internal/par, the sanctioned worker-pool fan-out; model concurrency
//     must use the cooperative sim.Proc abstraction.
//   - parshare:     forbids capturing a *sim.RNG (or sim.Engine/sim.Proc)
//     across a par.Map closure — per-job streams must be derived inside
//     each job from (seed, index) with sim.StreamSeed.
//
// A diagnostic can be suppressed with a directive comment on the same line
// or the line directly above the offending statement:
//
//	//mklint:ignore <analyzer> <reason>
//
// The reason is mandatory; a directive without one is itself reported and
// suppresses nothing. See docs/LINTING.md for the full contract.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one static check. The shape deliberately mirrors
// golang.org/x/tools/go/analysis.Analyzer so the suite could migrate to the
// real framework if the dependency ever becomes available.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //mklint:ignore directives.
	Name string

	// Doc is a one-paragraph description of what the analyzer enforces.
	Doc string

	// AppliesTo reports whether the analyzer should run on the package
	// with the given import path. A nil AppliesTo means every package.
	AppliesTo func(importPath string) bool

	// Run performs the check on one package, reporting findings through
	// pass.Reportf.
	Run func(pass *Pass) error
}

// A Pass provides one analyzer with the parsed, type-checked source of a
// single package and a sink for diagnostics.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	ignores *ignoreIndex
	sink    func(Diagnostic)
}

// A Diagnostic is one finding, located by position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Reportf records a finding at pos unless a well-formed //mklint:ignore
// directive covers it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.ignores.suppresses(p.Analyzer.Name, position) {
		return
	}
	p.sink(Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// All returns the full analyzer suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		NoWallTime,
		NoGlobalRand,
		MapRange,
		NoGoroutine,
		ParShare,
	}
}

// Run applies every applicable analyzer to every package and returns the
// surviving diagnostics sorted by position. Malformed suppression
// directives are reported as diagnostics of the pseudo-analyzer "mklint".
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		ignores := buildIgnoreIndex(pkg.Fset, pkg.Files)
		diags = append(diags, ignores.malformed...)
		for _, a := range analyzers {
			if a.AppliesTo != nil && !a.AppliesTo(pkg.ImportPath) {
				continue
			}
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
				ignores:   ignores,
				sink:      func(d Diagnostic) { diags = append(diags, d) },
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analyzer %s on %s: %w", a.Name, pkg.ImportPath, err)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// ignorePrefix is the directive marker. Like all Go directives it must
// start the comment with no space after "//".
const ignorePrefix = "//mklint:ignore"

// An ignoreDirective is one parsed //mklint:ignore comment.
type ignoreDirective struct {
	analyzer string
	reason   string
	line     int
}

// An ignoreIndex maps (file, line) to the directives that cover it.
type ignoreIndex struct {
	// byLine maps filename -> line -> directives covering that line.
	byLine    map[string]map[int][]ignoreDirective
	malformed []Diagnostic
}

// buildIgnoreIndex scans every comment in the package for //mklint:ignore
// directives. A directive covers its own source line and the next line, so
// both trailing and standalone placements work:
//
//	go p.run(fn) //mklint:ignore nogoroutine engine-managed goroutine
//
//	//mklint:ignore maprange order folded into sorted output below
//	for k := range m {
func buildIgnoreIndex(fset *token.FileSet, files []*ast.File) *ignoreIndex {
	idx := &ignoreIndex{byLine: map[string]map[int][]ignoreDirective{}}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				pos := fset.Position(c.Pos())
				rest := strings.TrimPrefix(c.Text, ignorePrefix)
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					idx.malformed = append(idx.malformed, Diagnostic{
						Pos:      pos,
						Analyzer: "mklint",
						Message: fmt.Sprintf(
							"malformed %s directive: want %q; the reason is mandatory and the directive is ignored",
							ignorePrefix, ignorePrefix+" <analyzer> <reason>"),
					})
					continue
				}
				d := ignoreDirective{
					analyzer: fields[0],
					reason:   strings.Join(fields[1:], " "),
					line:     pos.Line,
				}
				lines := idx.byLine[pos.Filename]
				if lines == nil {
					lines = map[int][]ignoreDirective{}
					idx.byLine[pos.Filename] = lines
				}
				lines[pos.Line] = append(lines[pos.Line], d)
				lines[pos.Line+1] = append(lines[pos.Line+1], d)
			}
		}
	}
	return idx
}

// suppresses reports whether a well-formed directive for analyzer (or the
// wildcard "all") covers the position.
func (idx *ignoreIndex) suppresses(analyzer string, pos token.Position) bool {
	lines := idx.byLine[pos.Filename]
	if lines == nil {
		return false
	}
	for _, d := range lines[pos.Line] {
		if d.analyzer == analyzer || d.analyzer == "all" {
			return true
		}
	}
	return false
}
