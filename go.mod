module mklite

go 1.24
