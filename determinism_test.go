package mklite

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"testing"

	"mklite/internal/experiments"
	"mklite/internal/fault"
	"mklite/internal/sim"
)

// The determinism contract (internal/sim): a run is a pure function of
// (model, seed). mklint enforces the static half; this file is the runtime
// half — a seed-replay regression: identical seeds must reproduce results
// byte for byte, and the digest must not be vacuous (different seeds must
// diverge). It is meant to run under `go test -race`, where the cooperative
// Proc handoff is also checked for real data races.

// runDigest executes a full three-kernel comparison plus a rendered stats
// figure and hashes every observable output: FOMs, mechanism breakdowns,
// heap accounting, step traces and the figure's table rendering.
func runDigest(t *testing.T, seed uint64) string {
	t.Helper()
	h := sha256.New()

	results, err := Compare("minife", 32, seed, &Options{Observe: Observe{Trace: true}})
	if err != nil {
		t.Fatalf("Compare(minife, 32, %d): %v", seed, err)
	}
	enc := json.NewEncoder(h)
	for _, r := range results {
		if err := enc.Encode(r); err != nil {
			t.Fatalf("encoding result: %v", err)
		}
	}

	// A scaling figure exercises the experiments/stats table path the
	// paper's plots are generated from.
	fig, err := experiments.Figure5b(experiments.Config{Reps: 2, Seed: seed, Quick: true})
	if err != nil {
		t.Fatalf("Figure5b(seed %d): %v", seed, err)
	}
	fmt.Fprint(h, fig.Render())
	fmt.Fprint(h, experiments.RelativeFigure(fig).Render())

	return fmt.Sprintf("%x", h.Sum(nil))
}

func TestSeedReplayDeterminism(t *testing.T) {
	first := runDigest(t, 1)
	second := runDigest(t, 1)
	if first != second {
		t.Fatalf("same seed, different digests:\n  run 1: %s\n  run 2: %s\nnondeterminism has crept into the simulation core", first, second)
	}
}

// parWidths are the fan-out widths the equivalence tests sweep: pure
// sequential (1, zero goroutines), minimal contention (2), and the
// production default (0 = GOMAXPROCS). The determinism contract requires
// the digest to be a function of (model, seed) only — never of the width.
var parWidths = []int{1, 2, 0}

// figure4Digest runs the quick-mode Figure 4 subset (all eight
// applications, three node counts each) at the given par fan-out width and
// hashes every rendered figure.
func figure4Digest(t *testing.T, workers int) string {
	t.Helper()
	h := sha256.New()
	figs, err := experiments.Figure4(experiments.Config{
		Reps: 2, Seed: 1, Quick: true, Workers: workers,
	})
	if err != nil {
		t.Fatalf("Figure4(workers=%d): %v", workers, err)
	}
	for _, fig := range figs {
		fmt.Fprint(h, fig.Render())
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}

// ltpDigest runs the three-kernel LTP conformance sweep at the given width
// and hashes the reports plus the rendered table.
func ltpDigest(t *testing.T, workers int) string {
	t.Helper()
	h := sha256.New()
	reports, table, err := experiments.LTPResultsWorkers(workers)
	if err != nil {
		t.Fatalf("LTPResultsWorkers(%d): %v", workers, err)
	}
	enc := json.NewEncoder(h)
	for _, rep := range reports {
		if err := enc.Encode(rep); err != nil {
			t.Fatalf("encoding report: %v", err)
		}
	}
	fmt.Fprint(h, table.Render())
	return fmt.Sprintf("%x", h.Sum(nil))
}

// TestParallelMatchesSequentialFigure4: fanning the Figure 4 grid out
// through par.Map must reproduce the sequential bytes exactly — worker
// scheduling must never leak into results. Run under -race this also
// exercises the pool for real data races.
func TestParallelMatchesSequentialFigure4(t *testing.T) {
	want := figure4Digest(t, parWidths[0])
	for _, w := range parWidths[1:] {
		if got := figure4Digest(t, w); got != want {
			t.Fatalf("Figure 4 digest differs between width %d and width 1:\n  width 1: %s\n  width %d: %s\npar fan-out has leaked scheduling into results", w, want, w, got)
		}
	}
}

// TestParallelMatchesSequentialLTP: the same equivalence for the LTP
// conformance sweep, whose three kernels boot inside worker closures.
func TestParallelMatchesSequentialLTP(t *testing.T) {
	want := ltpDigest(t, parWidths[0])
	for _, w := range parWidths[1:] {
		if got := ltpDigest(t, w); got != want {
			t.Fatalf("LTP digest differs between width %d and width 1:\n  width 1: %s\n  width %d: %s", w, want, w, got)
		}
	}
}

// traceModeDigest hashes a three-kernel comparison with the given run
// options, excluding the trace outputs themselves (Counters/TraceJSON are
// the observation, not the observed run).
func traceModeDigest(t *testing.T, opts *Options) string {
	t.Helper()
	h := sha256.New()
	results, err := Compare("minife", 32, 1, opts)
	if err != nil {
		t.Fatalf("Compare(minife, 32, 1): %v", err)
	}
	enc := json.NewEncoder(h)
	for _, r := range results {
		r.Counters = nil
		r.TraceJSON = nil
		if err := enc.Encode(r); err != nil {
			t.Fatalf("encoding result: %v", err)
		}
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}

// TestTracingIsPassive: the trace subsystem observes the run, it never
// steers it. Attaching the counter sink or the full event ring must leave
// every simulated output byte-identical to a tracing-off run — no RNG
// draws, no feedback into costs or scheduling.
func TestTracingIsPassive(t *testing.T) {
	want := traceModeDigest(t, &Options{Observe: Observe{Trace: true}})
	modes := []struct {
		name string
		opts *Options
	}{
		{"counters", &Options{Observe: Observe{Trace: true, Counters: true}}},
		{"counters+events", &Options{Observe: Observe{Trace: true, Counters: true, Events: true}}},
	}
	for _, m := range modes {
		if got := traceModeDigest(t, m.opts); got != want {
			t.Fatalf("digest with %s tracing differs from tracing off:\n  off: %s\n  %s: %s\nthe trace subsystem has fed back into the simulation", m.name, want, m.name, got)
		}
	}
}

// figure4CountersDigest is figure4Digest with the counter sinks attached;
// it additionally returns the per-figure merged counters so the caller can
// assert the counts themselves are width-independent.
func figure4CountersDigest(t *testing.T, workers int) (string, []map[string]int64) {
	t.Helper()
	h := sha256.New()
	figs, err := experiments.Figure4(experiments.Config{
		Reps: 2, Seed: 1, Quick: true, Workers: workers, Counters: true,
	})
	if err != nil {
		t.Fatalf("Figure4(workers=%d, counters): %v", workers, err)
	}
	var counters []map[string]int64
	for _, fig := range figs {
		fmt.Fprint(h, fig.Render())
		counters = append(counters, fig.Counters)
	}
	return fmt.Sprintf("%x", h.Sum(nil)), counters
}

// TestTracingIsPassiveUnderPar: the same passivity across the par fan-out —
// a counter-instrumented Figure 4 grid must render the exact bytes of the
// uninstrumented sequential run at every width, and the merged counters
// themselves must not depend on the width (per-repetition sinks merged in
// index order). Run under -race this also proves sink isolation across
// workers.
func TestTracingIsPassiveUnderPar(t *testing.T) {
	want := figure4Digest(t, 1)
	wantCounters := []map[string]int64(nil)
	for _, w := range []int{1, 0} {
		got, ctrs := figure4CountersDigest(t, w)
		if got != want {
			t.Fatalf("Figure 4 digest with counters at width %d differs from tracing off:\n  off: %s\n  counters: %s", w, want, got)
		}
		if wantCounters == nil {
			wantCounters = ctrs
			continue
		}
		for i := range ctrs {
			if fmt.Sprint(ctrs[i]) != fmt.Sprint(wantCounters[i]) {
				t.Fatalf("figure %d counters differ between width 1 and width %d:\n  width 1: %v\n  width %d: %v", i, w, wantCounters[i], w, ctrs[i])
			}
		}
	}
}

// figure5bFaultsDigest runs the quick Figure 5b sweep at the given fan-out
// width with the given fault plan attached to every job, hashing the
// rendered figure.
func figure5bFaultsDigest(t *testing.T, workers int, plan *fault.Plan) string {
	t.Helper()
	fig, err := experiments.Figure5b(experiments.Config{
		Reps: 2, Seed: 1, Quick: true, Workers: workers, Faults: plan,
	})
	if err != nil {
		t.Fatalf("Figure5b(workers=%d, faults=%v): %v", workers, plan, err)
	}
	h := sha256.New()
	fmt.Fprint(h, fig.Render())
	return fmt.Sprintf("%x", h.Sum(nil))
}

// TestEmptyFaultPlanIsByteIdentical: the fault subsystem's determinism
// contract (internal/fault, point 1): a nil or empty Plan must leave every
// simulated output byte-identical to a run with no fault subsystem at all —
// the injector is nil, no stream is drawn, no branch is taken. Checked at
// fan-out widths 1 and GOMAXPROCS so the guarantee holds under the par
// pipeline too, and meant to run under -race like the rest of this file.
// An active plan must diverge, or this test would pass vacuously.
func TestEmptyFaultPlanIsByteIdentical(t *testing.T) {
	want := figure5bFaultsDigest(t, 1, nil)
	for _, w := range []int{1, 0} {
		for _, plan := range []*fault.Plan{nil, {}, {Stragglers: []fault.Straggler{}}} {
			if got := figure5bFaultsDigest(t, w, plan); got != want {
				t.Fatalf("digest with empty plan %+v at width %d differs from faultless run:\n  faultless: %s\n  got:       %s\nan empty fault plan has perturbed the simulation", plan, w, want, got)
			}
		}
	}
	active := &fault.Plan{Stragglers: []fault.Straggler{{Node: 0, Extra: 2 * sim.Millisecond}}}
	if got := figure5bFaultsDigest(t, 1, active); got == want {
		t.Fatalf("digest with an active straggler plan equals the faultless digest (%s): faults are not being injected", want)
	}
}

// TestFaultPlanWidthIndependent: an *active* plan's outcome must also be a
// pure function of (model, seed) — never of the par fan-out width. The
// injector is per-run state created inside the worker closure (mklint's
// parshare rule), so sequential and GOMAXPROCS runs must agree byte for byte.
func TestFaultPlanWidthIndependent(t *testing.T) {
	plan := &fault.Plan{
		Stragglers: []fault.Straggler{{Node: 0, Extra: 2 * sim.Millisecond}},
		Link:       &fault.LinkFault{LossProb: 0.001, Timeout: 50 * sim.Microsecond},
	}
	want := figure5bFaultsDigest(t, 1, plan)
	if got := figure5bFaultsDigest(t, 0, plan); got != want {
		t.Fatalf("active-plan digest differs between width 1 and GOMAXPROCS:\n  width 1: %s\n  width 0: %s\nfault draws have leaked across par workers", want, got)
	}
}

func TestDifferentSeedsDiverge(t *testing.T) {
	// Guards the digest against vacuity: if hashing ignored the actual
	// results (or the model ignored the seed), every digest would
	// collide and TestSeedReplayDeterminism would prove nothing.
	a := runDigest(t, 1)
	b := runDigest(t, 2)
	if a == b {
		t.Fatalf("seeds 1 and 2 produced identical digests (%s): the digest or the model is ignoring the seed", a)
	}
}
