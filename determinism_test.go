package mklite

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"testing"

	"mklite/internal/experiments"
)

// The determinism contract (internal/sim): a run is a pure function of
// (model, seed). mklint enforces the static half; this file is the runtime
// half — a seed-replay regression: identical seeds must reproduce results
// byte for byte, and the digest must not be vacuous (different seeds must
// diverge). It is meant to run under `go test -race`, where the cooperative
// Proc handoff is also checked for real data races.

// runDigest executes a full three-kernel comparison plus a rendered stats
// figure and hashes every observable output: FOMs, mechanism breakdowns,
// heap accounting, step traces and the figure's table rendering.
func runDigest(t *testing.T, seed uint64) string {
	t.Helper()
	h := sha256.New()

	results, err := Compare("minife", 32, seed, &Options{Trace: true})
	if err != nil {
		t.Fatalf("Compare(minife, 32, %d): %v", seed, err)
	}
	enc := json.NewEncoder(h)
	for _, r := range results {
		if err := enc.Encode(r); err != nil {
			t.Fatalf("encoding result: %v", err)
		}
	}

	// A scaling figure exercises the experiments/stats table path the
	// paper's plots are generated from.
	fig, err := experiments.Figure5b(experiments.Config{Reps: 2, Seed: seed, Quick: true})
	if err != nil {
		t.Fatalf("Figure5b(seed %d): %v", seed, err)
	}
	fmt.Fprint(h, fig.Render())
	fmt.Fprint(h, experiments.RelativeFigure(fig).Render())

	return fmt.Sprintf("%x", h.Sum(nil))
}

func TestSeedReplayDeterminism(t *testing.T) {
	first := runDigest(t, 1)
	second := runDigest(t, 1)
	if first != second {
		t.Fatalf("same seed, different digests:\n  run 1: %s\n  run 2: %s\nnondeterminism has crept into the simulation core", first, second)
	}
}

func TestDifferentSeedsDiverge(t *testing.T) {
	// Guards the digest against vacuity: if hashing ignored the actual
	// results (or the model ignored the seed), every digest would
	// collide and TestSeedReplayDeterminism would prove nothing.
	a := runDigest(t, 1)
	b := runDigest(t, 2)
	if a == b {
		t.Fatalf("seeds 1 and 2 produced identical digests (%s): the digest or the model is ignoring the seed", a)
	}
}
