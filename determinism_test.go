package mklite

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"testing"

	"mklite/internal/experiments"
)

// The determinism contract (internal/sim): a run is a pure function of
// (model, seed). mklint enforces the static half; this file is the runtime
// half — a seed-replay regression: identical seeds must reproduce results
// byte for byte, and the digest must not be vacuous (different seeds must
// diverge). It is meant to run under `go test -race`, where the cooperative
// Proc handoff is also checked for real data races.

// runDigest executes a full three-kernel comparison plus a rendered stats
// figure and hashes every observable output: FOMs, mechanism breakdowns,
// heap accounting, step traces and the figure's table rendering.
func runDigest(t *testing.T, seed uint64) string {
	t.Helper()
	h := sha256.New()

	results, err := Compare("minife", 32, seed, &Options{Trace: true})
	if err != nil {
		t.Fatalf("Compare(minife, 32, %d): %v", seed, err)
	}
	enc := json.NewEncoder(h)
	for _, r := range results {
		if err := enc.Encode(r); err != nil {
			t.Fatalf("encoding result: %v", err)
		}
	}

	// A scaling figure exercises the experiments/stats table path the
	// paper's plots are generated from.
	fig, err := experiments.Figure5b(experiments.Config{Reps: 2, Seed: seed, Quick: true})
	if err != nil {
		t.Fatalf("Figure5b(seed %d): %v", seed, err)
	}
	fmt.Fprint(h, fig.Render())
	fmt.Fprint(h, experiments.RelativeFigure(fig).Render())

	return fmt.Sprintf("%x", h.Sum(nil))
}

func TestSeedReplayDeterminism(t *testing.T) {
	first := runDigest(t, 1)
	second := runDigest(t, 1)
	if first != second {
		t.Fatalf("same seed, different digests:\n  run 1: %s\n  run 2: %s\nnondeterminism has crept into the simulation core", first, second)
	}
}

// parWidths are the fan-out widths the equivalence tests sweep: pure
// sequential (1, zero goroutines), minimal contention (2), and the
// production default (0 = GOMAXPROCS). The determinism contract requires
// the digest to be a function of (model, seed) only — never of the width.
var parWidths = []int{1, 2, 0}

// figure4Digest runs the quick-mode Figure 4 subset (all eight
// applications, three node counts each) at the given par fan-out width and
// hashes every rendered figure.
func figure4Digest(t *testing.T, workers int) string {
	t.Helper()
	h := sha256.New()
	figs, err := experiments.Figure4(experiments.Config{
		Reps: 2, Seed: 1, Quick: true, Workers: workers,
	})
	if err != nil {
		t.Fatalf("Figure4(workers=%d): %v", workers, err)
	}
	for _, fig := range figs {
		fmt.Fprint(h, fig.Render())
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}

// ltpDigest runs the three-kernel LTP conformance sweep at the given width
// and hashes the reports plus the rendered table.
func ltpDigest(t *testing.T, workers int) string {
	t.Helper()
	h := sha256.New()
	reports, table, err := experiments.LTPResultsWorkers(workers)
	if err != nil {
		t.Fatalf("LTPResultsWorkers(%d): %v", workers, err)
	}
	enc := json.NewEncoder(h)
	for _, rep := range reports {
		if err := enc.Encode(rep); err != nil {
			t.Fatalf("encoding report: %v", err)
		}
	}
	fmt.Fprint(h, table.Render())
	return fmt.Sprintf("%x", h.Sum(nil))
}

// TestParallelMatchesSequentialFigure4: fanning the Figure 4 grid out
// through par.Map must reproduce the sequential bytes exactly — worker
// scheduling must never leak into results. Run under -race this also
// exercises the pool for real data races.
func TestParallelMatchesSequentialFigure4(t *testing.T) {
	want := figure4Digest(t, parWidths[0])
	for _, w := range parWidths[1:] {
		if got := figure4Digest(t, w); got != want {
			t.Fatalf("Figure 4 digest differs between width %d and width 1:\n  width 1: %s\n  width %d: %s\npar fan-out has leaked scheduling into results", w, want, w, got)
		}
	}
}

// TestParallelMatchesSequentialLTP: the same equivalence for the LTP
// conformance sweep, whose three kernels boot inside worker closures.
func TestParallelMatchesSequentialLTP(t *testing.T) {
	want := ltpDigest(t, parWidths[0])
	for _, w := range parWidths[1:] {
		if got := ltpDigest(t, w); got != want {
			t.Fatalf("LTP digest differs between width %d and width 1:\n  width 1: %s\n  width %d: %s", w, want, w, got)
		}
	}
}

func TestDifferentSeedsDiverge(t *testing.T) {
	// Guards the digest against vacuity: if hashing ignored the actual
	// results (or the model ignored the seed), every digest would
	// collide and TestSeedReplayDeterminism would prove nothing.
	a := runDigest(t, 1)
	b := runDigest(t, 2)
	if a == b {
		t.Fatalf("seeds 1 and 2 produced identical digests (%s): the digest or the model is ignoring the seed", a)
	}
}
