package mklite

// PR 10 scheduler gate: the pluggable scheduling seam is judged by
// BENCH_PR10.json (same "mklite-bench/v1" schema, compared by cmd/mkbench
// in CI with -budget sched_sep_shortfall_percent=0). One mode runs on
// every PR:
//
//   - "schedsweep-quick": the quick scheduler sweep (three node counts per
//     app including the full-scale 2,048 point, 2 reps, width 1) — the
//     wall-clock cost of the seam's headline experiment;
//
// and one is opt-in because it sweeps every node count:
//
//   - "schedsweep-full": the full sweep, only when MKLITE_BENCH_FULL=1.
//
// The derived metrics turn the acceptance criterion into a budget: the
// sweep must separate scheduling policies at full scale, not merely parse
// them. sched_sep_pp is the spread (percentage points of noise gap) between
// the best and worst policy medians on Linux at the top node count of the
// MiniFE figure; sched_sep_shortfall_percent = max(0, 2 − sched_sep_pp)
// clamps that into a "distance below the 2pp floor" that CI budgets at 0 —
// any regression collapsing the policies below 2pp fails the gate, while
// the actual spread (tens of points) leaves generous headroom.

import (
	"os"
	"runtime"
	"sync"
	"testing"

	"mklite/internal/benchfmt"
	"mklite/internal/experiments"
	"mklite/internal/kernel"
	"mklite/internal/stats"
)

var benchPR10 struct {
	mu   sync.Mutex
	file *benchfmt.File
}

// recordBenchPR10 rewrites BENCH_PR10.json after every update, so the
// artifact is valid however many benchmarks the -bench filter selects.
func recordBenchPR10(b *testing.B, apply func(f *benchfmt.File)) {
	b.Helper()
	benchPR10.mu.Lock()
	defer benchPR10.mu.Unlock()
	if benchPR10.file == nil {
		benchPR10.file = benchfmt.New("schedsweep-quick", runtime.GOMAXPROCS(0))
	}
	apply(benchPR10.file)
	out, err := benchPR10.file.Marshal()
	if err != nil {
		b.Fatalf("marshal BENCH_PR10: %v", err)
	}
	if err := os.WriteFile("BENCH_PR10.json", out, 0o644); err != nil {
		b.Fatalf("write BENCH_PR10.json: %v", err)
	}
}

// schedSweepFigs runs one sweep at width 1 (the conservative wall clock)
// and returns its figures for the separation metrics.
func schedSweepFigs(b *testing.B, quick bool) []*stats.Figure {
	b.Helper()
	figs, err := experiments.SchedSweep(experiments.Config{Reps: 2, Seed: 1, Quick: quick, Workers: 1})
	if err != nil {
		b.Fatal(err)
	}
	if len(figs) == 0 {
		b.Fatal("schedsweep produced no figures")
	}
	return figs
}

// schedSeparationPP extracts the Linux policy spread at the top node count
// of the MiniFE figure — the acceptance criterion's number.
func schedSeparationPP(b *testing.B, figs []*stats.Figure) float64 {
	b.Helper()
	for _, f := range figs {
		if f.ID != "schedsweep-minife" {
			continue
		}
		top := 0
		for _, s := range f.Series {
			for _, p := range s.Points {
				if p.Nodes > top {
					top = p.Nodes
				}
			}
		}
		sep, ok := experiments.SchedSeparation(f, kernel.TypeLinux, top)
		if !ok {
			b.Fatalf("no Linux series at %d nodes", top)
		}
		return sep
	}
	b.Fatal("no schedsweep-minife figure")
	return 0
}

// benchSchedSweep times one sweep mode best-of-N and folds the mode plus
// the separation-derived metrics into BENCH_PR10.json.
func benchSchedSweep(b *testing.B, mode string, quick bool) {
	b.Helper()
	var figs []*stats.Figure
	best, spread := benchBestOf(b, func() { figs = schedSweepFigs(b, quick) })
	sep := schedSeparationPP(b, figs)
	shortfall := max(0, 2-sep)
	b.ReportMetric(best, "wall-s/op")
	b.ReportMetric(spread, "spread-%")
	b.ReportMetric(sep, "sep-pp")
	recordBenchPR10(b, func(f *benchfmt.File) {
		f.Modes[mode] = benchfmt.Mode{Reps: benchReps, Seconds: best, SpreadPercent: spread}
		if f.Derived == nil {
			f.Derived = map[string]float64{}
		}
		f.Derived["sched_sep_pp"] = sep
		f.Derived["sched_sep_shortfall_percent"] = shortfall
	})
}

// BenchmarkSchedSweepQuick is the per-PR mode: quick sweep, separation
// metrics from its own figures (quick keeps the 2,048-node point, so the
// criterion is evaluated at full scale even here).
func BenchmarkSchedSweepQuick(b *testing.B) {
	benchSchedSweep(b, "schedsweep-quick", true)
}

// BenchmarkSchedSweepFull is the opt-in full grid (every node count per
// app), behind MKLITE_BENCH_FULL=1 like the other full-scale smokes.
func BenchmarkSchedSweepFull(b *testing.B) {
	if os.Getenv("MKLITE_BENCH_FULL") == "" {
		b.Skip("set MKLITE_BENCH_FULL=1 for the full-grid scheduler sweep")
	}
	benchSchedSweep(b, "schedsweep-full", false)
}
