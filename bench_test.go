package mklite

// The benchmark harness: one testing.B benchmark per table and figure of
// the paper's evaluation section. Each benchmark regenerates its artifact
// and reports the headline quantity as a custom metric, so
//
//	go test -bench=. -benchmem
//
// prints both the harness cost and the reproduced result. Quick sweeps
// (three node counts per application) keep the suite tractable; run
// cmd/mkexperiments without -quick for the full sweeps.

import (
	"testing"
)

func benchCfg() ExperimentConfig { return ExperimentConfig{Reps: 3, Seed: 1, Quick: true} }

// BenchmarkFigure4 regenerates the headline comparison (all eight
// applications on three kernels) and reports the cross-application median
// improvement (paper: 1.09x) and the best point (paper: up to 3.8x).
func BenchmarkFigure4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		figs, sum, err := ReproduceFigure4(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		if len(figs) != 8 {
			b.Fatal("figure count")
		}
		b.ReportMetric(sum.MedianImprovement, "median-x")
		b.ReportMetric(sum.BestImprovement, "best-x")
	}
}

// BenchmarkFigure5aCCSQCD regenerates the CCS-QCD memory-hierarchy figure
// and reports the largest-scale McKernel advantage in percent of the Linux
// median (paper: up to 139%).
func BenchmarkFigure5aCCSQCD(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := ReproduceFigure5a(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		mck := fig.Get("McKernel")
		b.ReportMetric(mck.Points[len(mck.Points)-1].Median, "mck-pct-of-linux")
	}
}

// BenchmarkFigure5bMiniFE regenerates the MiniFE strong-scaling figure and
// reports the LWK/Linux ratio at the largest scale (paper: ~7x at 1,024
// nodes).
func BenchmarkFigure5bMiniFE(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := ReproduceFigure5b(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		lin, mck := fig.Get("Linux"), fig.Get("McKernel")
		last := mck.Points[len(mck.Points)-1]
		var linMedian float64
		for _, p := range lin.Points {
			if p.Nodes == last.Nodes {
				linMedian = p.Median
			}
		}
		b.ReportMetric(last.Median/linMedian, "lwk-over-linux")
	}
}

// BenchmarkFigure6aLulesh regenerates the Lulesh scaling figure and reports
// the mid-scale McKernel advantage (paper: ~1.2-1.3x).
func BenchmarkFigure6aLulesh(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := ReproduceFigure6a(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		lin, mck := fig.Get("Linux"), fig.Get("McKernel")
		mid := mck.Points[len(mck.Points)/2]
		var linMedian float64
		for _, p := range lin.Points {
			if p.Nodes == mid.Nodes {
				linMedian = p.Median
			}
		}
		b.ReportMetric(mid.Median/linMedian, "lwk-over-linux")
	}
}

// BenchmarkFigure6bLAMMPS regenerates the LAMMPS figure and reports the
// largest-scale McKernel/Linux ratio (paper: below 1 — Linux wins).
func BenchmarkFigure6bLAMMPS(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := ReproduceFigure6b(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		lin, mck := fig.Get("Linux"), fig.Get("McKernel")
		last := mck.Points[len(mck.Points)-1]
		var linMedian float64
		for _, p := range lin.Points {
			if p.Nodes == last.Nodes {
				linMedian = p.Median
			}
		}
		b.ReportMetric(last.Median/linMedian, "lwk-over-linux")
	}
}

// BenchmarkTableILuleshBrk regenerates Table I and reports the regular-heap
// row's relative performance (paper: 121.0%).
func BenchmarkTableILuleshBrk(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _, err := ReproduceTableI(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[2].Percent, "regular-heap-pct")
		b.ReportMetric(rows[1].Percent, "heap-off-pct")
	}
}

// BenchmarkLTPSuite runs the 3,328-case conformance catalogue against all
// three kernels and reports the failure counts (paper: 0 / 32 / 111).
func BenchmarkLTPSuite(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reports, _, err := Conformance()
		if err != nil {
			b.Fatal(err)
		}
		for _, rep := range reports {
			switch rep.Kernel {
			case "mckernel":
				b.ReportMetric(float64(rep.Failed), "mckernel-failed")
			case "mos":
				b.ReportMetric(float64(rep.Failed), "mos-failed")
			}
		}
	}
}

// BenchmarkBrkTrace replays the section IV Lulesh heap trace and reports
// the Linux fault count that the LWK heaps avoid entirely.
func BenchmarkBrkTrace(b *testing.B) {
	for i := 0; i < b.N; i++ {
		traces, err := ReproduceBrkTrace(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		for _, tr := range traces {
			if tr.Kernel == "Linux" {
				b.ReportMetric(float64(tr.HeapFaults), "linux-heap-faults")
				b.ReportMetric(float64(tr.CumulativeBytes)/float64(tr.PeakBytes), "churn-ratio")
			}
		}
	}
}

// BenchmarkProxyOptions regenerates the section IV McKernel proxy-option
// study (paper: +9% AMG 2013, +2% MiniFE at 16 nodes).
func BenchmarkProxyOptions(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := ReproduceProxyOptions(ExperimentConfig{Reps: 3, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res[0].GainPercent, "amg-gain-pct")
		b.ReportMetric(res[1].GainPercent, "minife-gain-pct")
	}
}

// BenchmarkCCSQCDDDROnly regenerates the section IV DDR4-only comparison
// (paper: ~5% slowdown at scale).
func BenchmarkCCSQCDDDROnly(b *testing.B) {
	for i := 0; i < b.N; i++ {
		spill, err := Run("ccs-qcd", McKernel, 64, 1, nil)
		if err != nil {
			b.Fatal(err)
		}
		ddr, err := Run("ccs-qcd", McKernel, 64, 1, &Options{ForceDDROnly: true})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric((1-ddr.FOM/spill.FOM)*100, "ddr-slowdown-pct")
	}
}

// BenchmarkAblationNoise measures the FWQ noise signatures (section II's
// isolation claim).
func BenchmarkAblationNoise(b *testing.B) {
	for i := 0; i < b.N; i++ {
		samples := MeasureNoise(uint64(i+1), 5000)
		for _, s := range samples {
			if s.Kernel == Linux {
				b.ReportMetric(s.NoisePercent, "linux-fwq-pct")
			}
		}
	}
}

// BenchmarkAblationOffload measures the syscall-offload design gap: proxy
// round trip (McKernel) vs thread migration (mOS) vs a native Linux trap.
func BenchmarkAblationOffload(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := ReproduceAblations(ExperimentConfig{Reps: 1, Seed: uint64(i + 1), Quick: true})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rep.OffloadRoundTripSecs["mckernel-proxy"]*1e9, "proxy-ns")
		b.ReportMetric(rep.OffloadRoundTripSecs["mos-migration"]*1e9, "migration-ns")
		b.ReportMetric(rep.IKCQueueingTailSecs*1e6, "ikc-tail-us")
	}
}

// BenchmarkSingleRun measures the harness cost of one cluster run (the
// unit everything above is built from).
func BenchmarkSingleRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Run("milc", McKernel, 128, uint64(i+1), nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQuadrantMode regenerates the section III-B clustering-mode
// comparison and reports the share of the LWK advantage quadrant-mode
// Linux recovers.
func BenchmarkQuadrantMode(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := ReproduceQuadrant(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[1].Percent, "quadrant-linux-pct")
		b.ReportMetric(rows[2].Percent, "mckernel-snc4-pct")
	}
}

// BenchmarkCoreSpecialization regenerates the section III-A observation
// ("mOS using 64 cores beats Linux on 68 cores").
func BenchmarkCoreSpecialization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := ReproduceCoreSpecialization(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[1].Percent, "linux64-vs-linux68-pct")
		b.ReportMetric(rows[2].Percent, "mos64-vs-linux68-pct")
	}
}

// BenchmarkNodeSimOffloadStorm runs the discrete-event node model with a
// synchronised syscall burst (the LAMMPS contention mechanism) and reports
// the queueing tail.
func BenchmarkNodeSimOffloadStorm(b *testing.B) {
	cfg := NodeSimConfig{
		Ranks: 64, Steps: 10,
		ComputePerStepSecs: 2e-3,
		SyscallsPerStep:    8,
		SyscallServiceSecs: 3e-6,
		Barrier:            true,
	}
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i + 1)
		res, err := SimulateNode(McKernel, cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.MaxOffloadLatencySec*1e6, "queue-tail-us")
	}
}
