package mklite

import (
	"fmt"
	"strings"

	"mklite/internal/hw"
	"mklite/internal/kernel"
	"mklite/internal/linuxos"
	"mklite/internal/mckernel"
	"mklite/internal/metrics"
	"mklite/internal/mos"
	"mklite/internal/nodesim"
	"mklite/internal/noise"
	"mklite/internal/sim"
	"mklite/internal/stats"
	"mklite/internal/trace"
)

// bootForType builds a default-configured kernel model on a fresh KNL node.
func bootForType(kt kernel.Type) (kernel.Kernel, error) {
	node := hw.KNL7250SNC4()
	switch kt {
	case kernel.TypeLinux:
		return linuxos.Boot(node, linuxos.DefaultConfig())
	case kernel.TypeMcKernel:
		k, _, err := mckernel.Deploy(node, mckernel.DefaultOptions())
		return k, err
	case kernel.TypeMOS:
		return mos.Boot(node, mos.DefaultConfig())
	}
	return nil, fmt.Errorf("mklite: unknown kernel type %v", kt)
}

// KernelInfo summarises one kernel model's behaviour surface.
type KernelInfo struct {
	Name string
	// NativeSyscalls / OffloadedSyscalls / UnsupportedSyscalls count the
	// disposition table.
	NativeSyscalls      int
	OffloadedSyscalls   int
	UnsupportedSyscalls int
	// NoiseRate is the expected stolen-time fraction on an application
	// core.
	NoiseRate float64
	// Sched names the scheduling policy of application cores.
	Sched string
	// Preemptive reports tick-driven time sharing on application cores.
	Preemptive bool
	// OSCores and AppCores report the node partition.
	OSCores, AppCores int
}

// Describe returns the behaviour summary of a kernel.
func Describe(k Kernel) (KernelInfo, error) {
	kt, err := k.internalType()
	if err != nil {
		return KernelInfo{}, err
	}
	kern, err := bootForType(kt)
	if err != nil {
		return KernelInfo{}, err
	}
	return KernelInfo{
		Name:                kern.Name(),
		NativeSyscalls:      kern.Table().Count(kernel.Native),
		OffloadedSyscalls:   kern.Table().Count(kernel.Offloaded),
		UnsupportedSyscalls: kern.Table().Count(kernel.Unsupported),
		NoiseRate:           kern.Noise().ExpectedRate(1),
		Sched:               string(kern.Sched().Kind()),
		Preemptive:          kern.Sched().Preemptive(),
		OSCores:             len(kern.Partition().OSCores),
		AppCores:            len(kern.Partition().AppCores),
	}, nil
}

// NoiseSample holds an FWQ measurement of one kernel's application cores.
type NoiseSample struct {
	Kernel Kernel
	// NoisePercent is the FWQ metric: mean slowdown over the minimum
	// iteration, in percent.
	NoisePercent float64
	// MaxStretchPercent is the worst single iteration's slowdown.
	MaxStretchPercent float64
}

// MeasureNoise runs the FWQ microbenchmark (1 ms quanta) on each kernel's
// noise profile.
func MeasureNoise(seed uint64, iterations int) []NoiseSample {
	if iterations <= 0 {
		iterations = 5000
	}
	rng := sim.NewRNG(seed)
	profiles := []struct {
		k Kernel
		p *noise.Profile
	}{
		{Linux, noise.LinuxTuned()},
		{McKernel, noise.McKernelProfile()},
		{MOS, noise.MOSProfile()},
	}
	var out []NoiseSample
	for _, e := range profiles {
		r := noise.RunFWQ(rng.Split(), e.p, 1, sim.Millisecond, iterations)
		out = append(out, NoiseSample{
			Kernel:            e.k,
			NoisePercent:      r.NoisePercent(),
			MaxStretchPercent: r.MaxStretchPercent(),
		})
	}
	return out
}

// NoiseSourceBreakdown attributes an FWQ run's total detour to the noise
// sources that caused it (timer ticks, daemons, kworkers, ...): source name
// to stolen seconds over the whole run. The attribution rides the trace
// subsystem's counters, so the sampling sequence — and therefore every
// NoiseSample metric — is identical to MeasureNoise at the same seed.
func NoiseSourceBreakdown(k Kernel, seed uint64, iterations int) (map[string]float64, error) {
	if iterations <= 0 {
		iterations = 5000
	}
	var p *noise.Profile
	switch k {
	case Linux:
		p = noise.LinuxTuned()
	case McKernel:
		p = noise.McKernelProfile()
	case MOS:
		p = noise.MOSProfile()
	default:
		return nil, fmt.Errorf("mklite: unknown kernel %q", string(k))
	}
	ctrs := trace.NewCounters()
	noise.RunFWQTo(sim.NewRNG(seed), p, 1, sim.Millisecond, iterations, trace.NewSink(ctrs, nil))
	out := map[string]float64{}
	for _, name := range ctrs.Names() {
		src, ok := strings.CutPrefix(name, "noise.src.")
		if !ok {
			continue
		}
		src = strings.TrimSuffix(src, "_ns")
		out[src] = sim.Duration(ctrs.Get(name)).Seconds()
	}
	return out, nil
}

// NodeSimConfig configures a discrete-event single-node simulation (see
// internal/nodesim): every rank is a process on its own core, noise
// stretches compute, offloaded syscalls queue on the OS cores, and an
// optional per-step barrier couples the ranks.
type NodeSimConfig struct {
	Ranks              int
	Steps              int
	ComputePerStepSecs float64
	SyscallsPerStep    int
	SyscallServiceSecs float64
	Barrier            bool
	Seed               uint64
	// TraceQueueDepth records the offload queue-depth timeline into
	// NodeSimResult.QueueDepth. Purely observational: the simulated
	// outcome is identical with or without it.
	TraceQueueDepth bool
}

// CounterSample is one point of a virtual-time counter timeline.
type CounterSample struct {
	TimeSeconds float64
	Value       int64
}

// NodeSimResult is the node simulation outcome.
type NodeSimResult struct {
	Kernel               string
	ElapsedSeconds       float64
	AnalyticSeconds      float64
	OffloadsServiced     int
	MaxOffloadLatencySec float64
	NoiseTotalSeconds    float64
	// QueueDepth is the offload queue-depth timeline (one sample per
	// enqueue/dequeue) when TraceQueueDepth was set: the burst-and-drain
	// shape the analytic model folds away.
	QueueDepth []CounterSample
}

// SimulateNode runs the discrete-event node model on the given kernel —
// the event-by-event counterpart of the analytic cluster harness, exposing
// offload queueing and barrier coupling directly.
func SimulateNode(k Kernel, cfg NodeSimConfig) (NodeSimResult, error) {
	kt, err := k.internalType()
	if err != nil {
		return NodeSimResult{}, err
	}
	kern, err := bootForType(kt)
	if err != nil {
		return NodeSimResult{}, err
	}
	nc := nodesim.Config{
		Kern:            kern,
		Ranks:           cfg.Ranks,
		Steps:           cfg.Steps,
		ComputePerStep:  sim.DurationOf(cfg.ComputePerStepSecs),
		SyscallsPerStep: cfg.SyscallsPerStep,
		SyscallService:  sim.DurationOf(cfg.SyscallServiceSecs),
		Barrier:         cfg.Barrier,
		Seed:            cfg.Seed,
	}
	var evs *trace.Events
	if cfg.TraceQueueDepth {
		evs = trace.NewEvents(0)
		nc.Sink = trace.NewSink(nil, evs)
	}
	res, err := nodesim.Run(nc)
	if err != nil {
		return NodeSimResult{}, err
	}
	out := NodeSimResult{
		Kernel:               kern.Name(),
		ElapsedSeconds:       res.Elapsed.Seconds(),
		AnalyticSeconds:      nodesim.AnalyticEstimate(nc).Seconds(),
		OffloadsServiced:     res.OffloadsServiced,
		MaxOffloadLatencySec: res.MaxOffloadLatency.Seconds(),
		NoiseTotalSeconds:    res.NoiseTotal.Seconds(),
	}
	if evs != nil {
		for _, s := range evs.CounterSeries("offload.queue_depth") {
			out.QueueDepth = append(out.QueueDepth, CounterSample{
				TimeSeconds: sim.Duration(s.TS).Seconds(),
				Value:       s.Value,
			})
		}
	}
	return out, nil
}

// UtilizationSample holds an FTQ (fixed time quanta) measurement: the
// fraction of each fixed window available to the application.
type UtilizationSample struct {
	Kernel Kernel
	// MeanUtilization is the average fraction of the window spent on
	// application work (1.0 = noiseless).
	MeanUtilization float64
	// WorstWindow is the minimum utilisation observed.
	WorstWindow float64
}

// MeasureUtilization runs the FTQ microbenchmark (1 ms windows) on each
// kernel's noise profile.
func MeasureUtilization(seed uint64, iterations int) []UtilizationSample {
	if iterations <= 0 {
		iterations = 5000
	}
	rng := sim.NewRNG(seed)
	profiles := []struct {
		k Kernel
		p *noise.Profile
	}{
		{Linux, noise.LinuxTuned()},
		{McKernel, noise.McKernelProfile()},
		{MOS, noise.MOSProfile()},
	}
	var out []UtilizationSample
	for _, e := range profiles {
		r := noise.RunFTQ(rng.Split(), e.p, 1, sim.Millisecond, iterations)
		s := r.Summary()
		out = append(out, UtilizationSample{
			Kernel:          e.k,
			MeanUtilization: s.Mean,
			WorstWindow:     s.Min,
		})
	}
	return out
}

// NoiseDistribution is one kernel's FWQ detour distribution measured
// through the metrics histogram path: every positive per-iteration detour
// recorded into a log-bucketed histogram, with the headline percentiles in
// nanoseconds. TailRatio (p99.9 over p50) is the paper's noise
// fingerprint: Linux's daemon tail pushes it past 10x while the LWKs'
// residual housekeeping keeps it near 1.
type NoiseDistribution struct {
	Kernel   Kernel
	Count    int64
	MinNs    int64
	MaxNs    int64
	P50Ns    float64
	P90Ns    float64
	P99Ns    float64
	P999Ns   float64
	MeanNs   float64
	Rendered string // the mkprof-style table for this kernel's registry
}

// TailRatio returns p99.9 over p50 (0 when the median is 0).
func (d NoiseDistribution) TailRatio() float64 {
	if d.P50Ns == 0 {
		return 0
	}
	return d.P999Ns / d.P50Ns
}

// MeasureNoiseDistributions runs the FWQ microbenchmark on each kernel's
// noise profile with a metrics registry attached and returns the detour
// distributions. The sampling sequence is identical to MeasureNoise at the
// same seed and iteration count — the registry only observes.
func MeasureNoiseDistributions(seed uint64, quantumSecs float64, iterations int) []NoiseDistribution {
	if iterations <= 0 {
		iterations = 5000
	}
	quantum := sim.DurationOf(quantumSecs)
	if quantum <= 0 {
		quantum = sim.Millisecond
	}
	profiles := []struct {
		k Kernel
		p *noise.Profile
	}{
		{Linux, noise.LinuxTuned()},
		{McKernel, noise.McKernelProfile()},
		{MOS, noise.MOSProfile()},
	}
	var out []NoiseDistribution
	for _, e := range profiles {
		reg := metrics.NewRegistry()
		noise.RunFWQTo(sim.NewRNG(seed), e.p, 1, quantum, iterations,
			trace.NewSinkObs(nil, nil, reg))
		h := reg.Histogram("fwq.detour_ns")
		out = append(out, NoiseDistribution{
			Kernel:   e.k,
			Count:    h.Count(),
			MinNs:    h.Min(),
			MaxNs:    h.Max(),
			P50Ns:    h.Percentile(50),
			P90Ns:    h.Percentile(90),
			P99Ns:    h.Percentile(99),
			P999Ns:   h.Percentile(99.9),
			MeanNs:   h.Mean(),
			Rendered: reg.Report().Render(),
		})
	}
	return out
}

// NoiseSamplesMicros returns the raw FWQ iteration times (microseconds)
// for one kernel — the distribution behind MeasureNoise, for histogramming.
func NoiseSamplesMicros(k Kernel, seed uint64, iterations int) ([]float64, error) {
	if iterations <= 0 {
		iterations = 5000
	}
	var p *noise.Profile
	switch k {
	case Linux:
		p = noise.LinuxTuned()
	case McKernel:
		p = noise.McKernelProfile()
	case MOS:
		p = noise.MOSProfile()
	default:
		return nil, fmt.Errorf("mklite: unknown kernel %q", string(k))
	}
	r := noise.RunFWQ(sim.NewRNG(seed), p, 1, sim.Millisecond, iterations)
	return r.Samples, nil
}

// RenderHistogram bins values into buckets and renders a text histogram.
func RenderHistogram(values []float64, buckets int, unit string) string {
	return stats.NewHistogram(values, buckets).Render(unit)
}
