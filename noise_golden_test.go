package mklite

// Golden test for the FWQ detour distribution *shape* — the paper's noise
// fingerprint, pinned through the metrics histogram path. Linux's timer/
// daemon/kworker activity produces a heavy tail: its p99.9 detour sits an
// order of magnitude above its median. The LWKs' residual housekeeping is
// so uniform that even p99.9 stays within a small factor of the median —
// the distribution property (not the mean!) that prevents collective
// amplification at scale (Fig. 5b).
//
// The configuration is golden: seed 3, 1 ms quanta, 5000 iterations. At
// that point the distributions are fully deterministic, so the assertions
// below are tight. If a noise-profile or histogram change moves these
// numbers, that is a behaviour change to be reviewed, not a flaky test.

import "testing"

func TestFWQDetourDistributionShape(t *testing.T) {
	dists := MeasureNoiseDistributions(3, 1e-3, 5000)
	if len(dists) != 3 {
		t.Fatalf("want 3 kernels, got %d", len(dists))
	}
	byKernel := map[Kernel]NoiseDistribution{}
	for _, d := range dists {
		byKernel[d.Kernel] = d
	}

	linux := byKernel[Linux]
	if linux.Count == 0 {
		t.Fatal("Linux recorded no detours: the noise profile is gone")
	}
	// Linux: heavy tail. p99.9 at least 10x the median detour.
	if r := linux.TailRatio(); r < 10 {
		t.Errorf("Linux detour tail ratio p99.9/p50 = %.1f, want >= 10 (p50=%.0fns p99.9=%.0fns)",
			r, linux.P50Ns, linux.P999Ns)
	}

	for _, k := range []Kernel{McKernel, MOS} {
		d := byKernel[k]
		if d.Count == 0 {
			// A perfectly silent LWK would also satisfy the paper's
			// claim, but the profiles do model residual housekeeping.
			t.Errorf("%s recorded no detours: residual housekeeping is gone", k)
			continue
		}
		// LWKs: tight distribution. Even p99.9 within 2x the median.
		if r := d.TailRatio(); r > 2 {
			t.Errorf("%s detour tail ratio p99.9/p50 = %.1f, want <= 2 (p50=%.0fns p99.9=%.0fns)",
				k, r, d.P50Ns, d.P999Ns)
		}
		// And the LWK tail sits far below Linux's.
		if d.P999Ns*10 > linux.P999Ns {
			t.Errorf("%s p99.9 detour %.0fns is not an order of magnitude below Linux's %.0fns",
				k, d.P999Ns, linux.P999Ns)
		}
	}

	// The registry path must agree with itself on replay.
	again := MeasureNoiseDistributions(3, 1e-3, 5000)
	for i := range dists {
		if dists[i] != again[i] {
			t.Fatalf("FWQ distribution for %s not reproducible:\n  first:  %+v\n  second: %+v",
				dists[i].Kernel, dists[i], again[i])
		}
	}
}
