package mklite

// Fault-layer overhead smoke, measured best-of-N via bench_util_test.go
// into BENCH_PR5.json (same "mklite-bench/v1" schema as BENCH_PR4.json,
// gated by cmd/mkbench in CI). The budget:
//
//   - faults-off must be (nearly) free: NewInjector returns nil for an
//     empty plan and every injection site reduces to one nil-receiver
//     test, so "faults_off_overhead_percent" carries a <=2% ceiling.
//     The probe attaches an *empty* fault.Plan to every job — the worst
//     faults-off case, paying Empty()/Validate() plus the nil fast path
//     at every site — against the no-plan baseline, interleaved.
//
// An active plan's cost is recorded too ("faults-straggler"), for the
// trajectory only: injecting faults is supposed to cost time.
//
// Outputs are already proven byte-identical between the two faults-off
// modes by determinism_test.go; this file only measures time.

import (
	"os"
	"runtime"
	"sort"
	"sync"
	"testing"

	"mklite/internal/benchfmt"
	"mklite/internal/fault"
	"mklite/internal/sim"
)

// faultBenchReps: the faults-off budget (2%) is less than half the
// counters budget on the same workload, so this smoke takes more
// interleaved reps than benchReps and a sturdier estimator than
// ratio-of-bests.
const faultBenchReps = 9

// benchPairedOverhead times base and probe in adjacent pairs and derives
// the overhead as the *median of the per-pair ratios*: each probe run is
// compared only against the base run timed next to it, so slow drift in
// machine load cancels pair by pair, and the median discards the pairs a
// scheduler hiccup landed in — the ratio-of-bests estimator
// (benchInterleaved) spans the whole window and wobbles several percent on
// a busy runner, too coarse for this benchmark's 2% budget. Within a pair
// the order alternates (base first on even pairs, probe first on odd) so
// the second slot's warm-cache advantage cancels across pairs too.
func benchPairedOverhead(n int, base, probe func()) (baseBest, baseSpread, probeBest, probeSpread, overheadPct float64) {
	baseS, probeS := make([]float64, n), make([]float64, n)
	ratios := make([]float64, n)
	for i := 0; i < n; i++ {
		if i%2 == 0 {
			baseS[i] = timed(base)
			probeS[i] = timed(probe)
		} else {
			probeS[i] = timed(probe)
			baseS[i] = timed(base)
		}
		ratios[i] = probeS[i] / baseS[i]
	}
	baseBest, baseSpread = bestSpread(baseS)
	probeBest, probeSpread = bestSpread(probeS)
	sort.Float64s(ratios)
	median := ratios[n/2]
	if n%2 == 0 {
		median = (ratios[n/2-1] + ratios[n/2]) / 2
	}
	return baseBest, baseSpread, probeBest, probeSpread, (median - 1) * 100
}

var benchPR5 struct {
	mu   sync.Mutex
	file *benchfmt.File
}

func benchPR5File() *benchfmt.File {
	if benchPR5.file == nil {
		benchPR5.file = benchfmt.New("figure4-quick", runtime.GOMAXPROCS(0))
	}
	return benchPR5.file
}

// flushBenchPR5 rewrites BENCH_PR5.json — called with the lock held after
// every update, so the artifact is valid however many benchmarks the
// -bench filter selects.
func flushBenchPR5(b *testing.B) {
	b.Helper()
	out, err := benchPR5.file.Marshal()
	if err != nil {
		b.Fatalf("marshal BENCH_PR5: %v", err)
	}
	if err := os.WriteFile("BENCH_PR5.json", out, 0o644); err != nil {
		b.Fatalf("write BENCH_PR5.json: %v", err)
	}
}

func recordBenchPR5Mode(b *testing.B, mode string, reps int, best, spread float64) {
	b.Helper()
	benchPR5.mu.Lock()
	defer benchPR5.mu.Unlock()
	f := benchPR5File()
	f.Modes[mode] = benchfmt.Mode{Reps: reps, Seconds: best, SpreadPercent: spread}
	flushBenchPR5(b)
}

func recordBenchPR5Derived(b *testing.B, name string, value float64) {
	b.Helper()
	benchPR5.mu.Lock()
	defer benchPR5.mu.Unlock()
	f := benchPR5File()
	if f.Derived == nil {
		f.Derived = map[string]float64{}
	}
	f.Derived[name] = value
	flushBenchPR5(b)
}

// BenchmarkFaultsOffOverhead interleaves the no-plan baseline with an
// empty-plan probe over the Figure 4 quick grid and derives
// "faults_off_overhead_percent" — the CI budget proving the fault layer
// costs nothing until a plan actually injects something.
func BenchmarkFaultsOffOverhead(b *testing.B) {
	baseBest, baseSpread, probeBest, probeSpread, overhead := benchPairedOverhead(faultBenchReps,
		figure4Run(b, nil),
		figure4Run(b, func(cfg *ExperimentConfig) { cfg.Faults = &fault.Plan{} }))
	b.ReportMetric(probeBest, "wall-s/op")
	b.ReportMetric(probeSpread, "spread-%")
	// The estimator can land a hair below zero when the probe's nil fast
	// path sits inside the noise floor; a negative overhead is a
	// measurement artifact, not a speedup, and a checked-in negative value
	// would let a real regression hide inside the slack. The budget only
	// polices the upper side, so clamp at zero.
	if overhead < 0 {
		overhead = 0
	}
	b.ReportMetric(overhead, "overhead-%")
	recordBenchPR5Mode(b, "faults-off", faultBenchReps, probeBest, probeSpread)
	recordBenchPR5Mode(b, "faults-off-baseline", faultBenchReps, baseBest, baseSpread)
	recordBenchPR5Derived(b, "faults_off_overhead_percent", overhead)
}

// BenchmarkFaultsStraggler records the cost of an *active* plan — one
// fixed-detour straggler plus a mildly lossy fabric on every job of the
// grid — purely for the performance trajectory; no budget applies.
func BenchmarkFaultsStraggler(b *testing.B) {
	plan := &fault.Plan{
		Stragglers: []fault.Straggler{{Node: 0, Extra: 2 * sim.Millisecond}},
		Link:       &fault.LinkFault{LossProb: 0.001, Timeout: 50 * sim.Microsecond},
	}
	best, spread := benchBestOfN(b, faultBenchReps, figure4Run(b,
		func(cfg *ExperimentConfig) { cfg.Faults = plan }))
	b.ReportMetric(best, "wall-s/op")
	b.ReportMetric(spread, "spread-%")
	recordBenchPR5Mode(b, "faults-straggler", faultBenchReps, best, spread)
}
