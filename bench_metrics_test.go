package mklite

// Metrics-overhead smoke for the internal/metrics registry, measured
// best-of-N via bench_util_test.go into BENCH_PR4.json. With -metrics off
// the observer is nil and every Observe site is the same single pointer
// test the trace sink already pays (covered by the "sequential" and
// "trace-off" modes); this file measures the registry attached — counters
// plus histogram/phase/gauge recording — as "metrics_overhead_percent".
// Digest equality with the registry on or off is proven separately by
// determinism_test.go; this file only measures time.

import "testing"

// BenchmarkFigure4Metrics runs the Figure 4 quick sweep with a metrics
// registry attached to every repetition: log-bucketed histograms on the
// fault/offload/noise/collective paths, per-phase timers and gauges.
func BenchmarkFigure4Metrics(b *testing.B) {
	benchFigure4Overhead(b, "metrics", "metrics_overhead_percent",
		func(cfg *ExperimentConfig) { cfg.Metrics = true })
}
