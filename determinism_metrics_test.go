package mklite

// The passivity half of the metrics contract (ISSUE PR4): the metrics
// registry observes the run, it never steers it. Every simulated output
// must be byte-identical with metrics off, metrics on, and flame capture
// on — sequentially and across par fan-out widths — and the aggregated
// profile itself must be width-independent. Run under -race this also
// proves registry isolation across workers (one registry per repetition,
// merged in index order).

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"testing"

	"mklite/internal/experiments"
)

// metricsModeDigest hashes a three-kernel comparison excluding the
// observation outputs themselves (Counters/TraceJSON are stripped like in
// traceModeDigest; MetricsJSON/MetricsText/Folded are json:"-" and never
// encoded).
func metricsModeDigest(t *testing.T, opts *Options) string {
	t.Helper()
	h := sha256.New()
	results, err := Compare("minife", 32, 1, opts)
	if err != nil {
		t.Fatalf("Compare(minife, 32, 1): %v", err)
	}
	enc := json.NewEncoder(h)
	for _, r := range results {
		r.Counters = nil
		r.TraceJSON = nil
		if err := enc.Encode(r); err != nil {
			t.Fatalf("encoding result: %v", err)
		}
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}

// TestMetricsArePassive: attaching the registry, the flame recorder, or
// both must leave every simulated output byte-identical to a bare run —
// no RNG draws, no feedback into costs or scheduling.
func TestMetricsArePassive(t *testing.T) {
	want := metricsModeDigest(t, &Options{Observe: Observe{Trace: true}})
	modes := []struct {
		name string
		opts *Options
	}{
		{"metrics", &Options{Observe: Observe{Trace: true, Metrics: true}}},
		{"flame", &Options{Observe: Observe{Trace: true, Flame: true}}},
		{"metrics+flame+counters", &Options{Observe: Observe{Trace: true, Metrics: true, Flame: true, Counters: true}}},
	}
	for _, m := range modes {
		if got := metricsModeDigest(t, m.opts); got != want {
			t.Fatalf("digest with %s differs from metrics off:\n  off: %s\n  %s: %s\nthe metrics subsystem has fed back into the simulation", m.name, want, m.name, got)
		}
	}
}

// TestMetricsAreReproducible: the observation itself is deterministic —
// the same run records the same report bytes and the same folded stacks,
// twice over.
func TestMetricsAreReproducible(t *testing.T) {
	run := func() Result {
		r, err := Run("minife", McKernel, 32, 1, &Options{Observe: Observe{Metrics: true, Flame: true}})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b := run(), run()
	if string(a.MetricsJSON) != string(b.MetricsJSON) {
		t.Fatal("same run, different metrics report bytes")
	}
	if a.MetricsText != b.MetricsText {
		t.Fatal("same run, different rendered metrics text")
	}
	if a.Folded != b.Folded {
		t.Fatal("same run, different folded flame stacks")
	}
	if len(a.MetricsJSON) == 0 || a.MetricsText == "" || a.Folded == "" {
		t.Fatalf("metrics outputs empty: json=%d text=%d folded=%d",
			len(a.MetricsJSON), len(a.MetricsText), len(a.Folded))
	}
}

// figure4MetricsDigest runs the quick Figure 4 grid with per-repetition
// registries attached at the given width; it returns the figure digest
// (metrics profile excluded) and the aggregated profile text.
func figure4MetricsDigest(t *testing.T, workers int) (string, []string) {
	t.Helper()
	h := sha256.New()
	figs, err := experiments.Figure4(experiments.Config{
		Reps: 2, Seed: 1, Quick: true, Workers: workers, Metrics: true,
	})
	if err != nil {
		t.Fatalf("Figure4(workers=%d, metrics): %v", workers, err)
	}
	var profiles []string
	for _, fig := range figs {
		fmt.Fprint(h, fig.Render())
		profiles = append(profiles, fig.MetricsText)
	}
	return fmt.Sprintf("%x", h.Sum(nil)), profiles
}

// TestMetricsArePassiveUnderPar: a metrics-instrumented Figure 4 grid must
// render the exact bytes of the uninstrumented sequential run at width 1
// and at the production width, and the aggregated per-figure profile must
// itself be width-independent.
func TestMetricsArePassiveUnderPar(t *testing.T) {
	want := figure4Digest(t, 1)
	var wantProfiles []string
	for _, w := range []int{1, 0} {
		got, profiles := figure4MetricsDigest(t, w)
		if got != want {
			t.Fatalf("Figure 4 digest with metrics at width %d differs from metrics off:\n  off: %s\n  metrics: %s", w, want, got)
		}
		for i, p := range profiles {
			if p == "" {
				t.Fatalf("figure %d has no aggregated metrics profile at width %d", i, w)
			}
		}
		if wantProfiles == nil {
			wantProfiles = profiles
			continue
		}
		for i := range profiles {
			if profiles[i] != wantProfiles[i] {
				t.Fatalf("figure %d metrics profile differs between width 1 and width %d:\nwidth 1:\n%s\nwidth %d:\n%s",
					i, w, wantProfiles[i], w, profiles[i])
			}
		}
	}
}
