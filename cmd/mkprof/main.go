// Command mkprof is the simulator's profiler front end: it records a run
// with the metrics registry attached, renders profile reports, diffs two
// recorded profiles, and exports virtual-time flame graphs.
//
// Usage:
//
//	mkprof record -app minife -kernel mckernel -nodes 64 -o minife.metrics.json
//	mkprof report minife.metrics.json
//	mkprof diff old.metrics.json new.metrics.json
//	mkprof flame -app lulesh2.0 -kernel mos -nodes 1 -o lulesh.folded
//	mkprof flame run.trace.json
//
// record can additionally capture a CPU profile of the simulator itself
// (-cpuprofile sim.pprof) for go tool pprof — the only wall-clock-dependent
// output mkprof has; everything else is virtual time and deterministic.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime/pprof"
	"strings"

	"mklite"
	"mklite/internal/metrics"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "record":
		record(os.Args[2:])
	case "report":
		report(os.Args[2:])
	case "diff":
		diff(os.Args[2:])
	case "flame":
		flame(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "mkprof: unknown subcommand %q\n\n", os.Args[1])
		usage()
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage:
  mkprof record -app A -kernel K -nodes N [-seed S] [-o out.metrics.json] [-cpuprofile p.pprof]
  mkprof report file.metrics.json
  mkprof diff old.metrics.json new.metrics.json
  mkprof flame -app A -kernel K -nodes N [-seed S] [-o out.folded]
  mkprof flame file.trace.json [-o out.folded]
`)
	os.Exit(2)
}

// runFlags declares the flags shared by record and flame.
func runFlags(fs *flag.FlagSet) (app, kern *string, nodes *int, seed *uint64, out *string) {
	app = fs.String("app", "minife", "application to run")
	kern = fs.String("kernel", "mckernel", "kernel: linux, mckernel or mos")
	nodes = fs.Int("nodes", 64, "node count")
	seed = fs.Uint64("seed", 1, "run seed")
	out = fs.String("o", "", "output path (default derived from app/kernel/nodes)")
	return
}

func record(args []string) {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	app, kern, nodes, seed, out := runFlags(fs)
	cpuprofile := fs.String("cpuprofile", "", "also write a Go CPU profile of the simulator to this file")
	fs.Parse(args)

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "mkprof: cpu profile: %s\n", *cpuprofile)
		}()
	}

	res := run(*app, *kern, *nodes, *seed, &mklite.Options{Observe: mklite.Observe{Metrics: true}})
	path := *out
	if path == "" {
		path = fmt.Sprintf("%s-%s-%d.metrics.json", res.App, *kern, *nodes)
	}
	if err := os.WriteFile(path, res.MetricsJSON, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("%s on %s, %d nodes: FOM %.6g %s, elapsed %.6g s\n",
		res.App, res.Kernel, res.Nodes, res.FOM, res.Unit, res.ElapsedSeconds)
	fmt.Printf("metrics: %s (%d bytes, %s)\n", path, len(res.MetricsJSON), metrics.Schema)
	fmt.Print(res.MetricsText)
}

func report(args []string) {
	fs := flag.NewFlagSet("report", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 1 {
		fatal(fmt.Errorf("report needs exactly one metrics file, got %d args", fs.NArg()))
	}
	fmt.Print(readReport(fs.Arg(0)).Render())
}

func diff(args []string) {
	fs := flag.NewFlagSet("diff", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 2 {
		fatal(fmt.Errorf("diff needs exactly two metrics files, got %d args", fs.NArg()))
	}
	fmt.Print(metrics.Diff(readReport(fs.Arg(0)), readReport(fs.Arg(1))))
}

func flame(args []string) {
	fs := flag.NewFlagSet("flame", flag.ExitOnError)
	app, kern, nodes, seed, out := runFlags(fs)
	fs.Parse(args)

	var folded, src string
	if fs.NArg() == 1 && strings.HasSuffix(fs.Arg(0), ".json") {
		// Fold an existing trace-event export.
		data, err := os.ReadFile(fs.Arg(0))
		if err != nil {
			fatal(err)
		}
		folded, err = metrics.FoldedFromJSON(data)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", fs.Arg(0), err))
		}
		src = fs.Arg(0)
	} else {
		res := run(*app, *kern, *nodes, *seed, &mklite.Options{Observe: mklite.Observe{Flame: true}})
		folded = res.Folded
		src = fmt.Sprintf("%s on %s, %d nodes", res.App, res.Kernel, res.Nodes)
	}
	path := *out
	if path == "" {
		path = fmt.Sprintf("%s-%s-%d.folded", *app, *kern, *nodes)
	}
	if err := os.WriteFile(path, []byte(folded), 0o644); err != nil {
		fatal(err)
	}
	lines := strings.Count(folded, "\n")
	fmt.Printf("flame: %s (%d stacks from %s; load in speedscope or flamegraph.pl)\n", path, lines, src)
}

func run(app, kern string, nodes int, seed uint64, opts *mklite.Options) mklite.Result {
	k, err := mklite.ParseKernel(kern)
	if err != nil {
		fatal(err)
	}
	res, err := mklite.Run(app, k, nodes, seed, opts)
	if err != nil {
		fatal(err)
	}
	return res
}

func readReport(path string) *metrics.Report {
	data, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	rep, err := metrics.ReadReport(data)
	if err != nil {
		fatal(fmt.Errorf("%s: %w", path, err))
	}
	return rep
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mkprof:", err)
	os.Exit(1)
}
