// Command mknoise measures OS interference with the FWQ (fixed work
// quanta) microbenchmark on each kernel's application-core noise profile —
// the property that strong partitioning exists to protect ("preventing OS
// jitter from Linux to be propagated to the LWK").
//
// Usage:
//
//	mknoise
//	mknoise -iters 20000 -seed 3
package main

import (
	"flag"
	"fmt"
	"maps"
	"slices"

	"mklite"
	"mklite/internal/cliflags"
)

func main() {
	var (
		iters    = flag.Int("iters", 10000, "FWQ/FTQ iterations")
		seed     = cliflags.Seed(flag.CommandLine)
		ftq      = flag.Bool("ftq", false, "also run the fixed-time-quanta benchmark")
		hist     = flag.Bool("hist", false, "print the FWQ sample distribution per kernel")
		counters = cliflags.Counters(flag.CommandLine)
		metricsF = cliflags.Metrics(flag.CommandLine)
	)
	flag.Parse()

	fmt.Printf("FWQ, 1 ms work quanta, %d iterations per kernel\n\n", *iters)
	fmt.Printf("%-10s %16s %18s\n", "kernel", "noise (mean %)", "max stretch (%)")
	for _, s := range mklite.MeasureNoise(*seed, *iters) {
		fmt.Printf("%-10s %16.5f %18.3f\n", s.Kernel, s.NoisePercent, s.MaxStretchPercent)
	}
	if *ftq {
		fmt.Printf("\nFTQ, 1 ms windows, %d iterations per kernel\n\n", *iters)
		fmt.Printf("%-10s %18s %18s\n", "kernel", "mean utilisation", "worst window")
		for _, s := range mklite.MeasureUtilization(*seed, *iters) {
			fmt.Printf("%-10s %18.6f %18.6f\n", s.Kernel, s.MeanUtilization, s.WorstWindow)
		}
	}
	if *counters {
		fmt.Println("\nPer-source detour attribution (seconds stolen over the whole run):")
		for _, k := range mklite.Kernels() {
			srcs, err := mklite.NoiseSourceBreakdown(k, *seed, *iters)
			if err != nil {
				fmt.Println("mknoise:", err)
				return
			}
			fmt.Printf("%-10s", k)
			if len(srcs) == 0 {
				fmt.Print(" (no detours)")
			}
			for _, name := range slices.Sorted(maps.Keys(srcs)) {
				fmt.Printf("  %s %.6f", name, srcs[name])
			}
			fmt.Println()
		}
	}
	if *metricsF {
		fmt.Println("\nFWQ detour distributions (ns, detoured iterations only; p99.9/p50 is the tail fingerprint):")
		fmt.Printf("%-10s %8s %10s %10s %10s %10s %10s %12s\n",
			"kernel", "detours", "p50", "p90", "p99", "p99.9", "max", "p99.9/p50")
		for _, d := range mklite.MeasureNoiseDistributions(*seed, 1e-3, *iters) {
			fmt.Printf("%-10s %8d %10.0f %10.0f %10.0f %10.0f %10d %11.1fx\n",
				d.Kernel, d.Count, d.P50Ns, d.P90Ns, d.P99Ns, d.P999Ns, d.MaxNs, d.TailRatio())
		}
	}
	if *hist {
		for _, k := range mklite.Kernels() {
			samples, err := mklite.NoiseSamplesMicros(k, *seed, *iters)
			if err != nil {
				fmt.Println("mknoise:", err)
				return
			}
			fmt.Printf("\n%s FWQ iteration-time distribution:\n", k)
			fmt.Print(mklite.RenderHistogram(samples, 10, "us"))
		}
	}
	fmt.Println("\nThe LWK profiles sit orders of magnitude below Linux: the absence of a")
	fmt.Println("heavy tail is what prevents collective amplification at scale (Fig. 5b).")
}
