// Command mkfleet runs the facility-scale batch-scheduler simulation: a
// seeded multi-tenant job stream scheduled onto a finite node pool with
// FIFO + conservative backfill, a pluggable per-job kernel-selection policy,
// and co-tenancy interference on shared nodes (see docs/FLEET.md).
//
// Usage:
//
//	mkfleet                                   # 1,000 jobs on 256 nodes, heuristic policy
//	mkfleet -policy specialize -share 2       # MultiK-style per-app specialization
//	mkfleet -compare -jobs 200 -nodes 64      # all policies on the same stream
//	mkfleet -json -seed 7                     # byte-stable JSON (CI diffs two runs)
//
// Output is a pure function of the flags: same flags, same bytes, at any
// -workers width.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"maps"
	"os"
	"slices"
	"strings"

	"mklite/internal/cliflags"
	"mklite/internal/fleet"
	"mklite/internal/obs"
	"mklite/internal/sim"
	"mklite/internal/stats"
)

func main() {
	var (
		nodes    = flag.Int("nodes", 256, "facility size in nodes")
		jobs     = flag.Int("jobs", 1000, "number of jobs in the stream")
		seed     = cliflags.Seed(flag.CommandLine)
		workers  = cliflags.Workers(flag.CommandLine)
		policy   = flag.String("policy", "heuristic", "kernel-selection policy: "+strings.Join(fleet.PolicyNames(), ", ")+"; add ':<sched>' (e.g. heuristic:gang) to pin every job's scheduler")
		schedF   = cliflags.Sched(flag.CommandLine)
		backfill = flag.Bool("backfill", true, "conservative backfill (false = strict FIFO)")
		depth    = flag.Int("backfill-depth", 0, "max queued jobs examined per backfill pass (0 = default)")
		share    = flag.Int("share", 1, "node oversubscription factor (jobs per node; >1 enables co-tenancy interference)")
		interf   = flag.String("interference", "", "co-tenancy fault-plan template, e.g. 'storm:period=2ms,burst=150us,offload-factor=2' (default: built-in template when -share > 1)")
		arrival  = flag.Duration("arrival-mean", 0, "mean job interarrival gap (virtual time; 0 = default)")
		counters = cliflags.Counters(flag.CommandLine)
		perjob   = flag.Bool("perjob", false, "include every job's outcome in the result")
		compare  = flag.Bool("compare", false, "run every policy on the same stream and print a comparison table")
		jsonOut  = flag.Bool("json", false, "emit the result as JSON (byte-stable)")

		obsTimeline  = flag.String("obs-timeline", "", "write the facility occupancy timeline (Chrome trace JSON) to this file")
		obsDecisions = flag.String("obs-decisions", "", "write the backfill decision log to this file")
		obsJobCtrs   = flag.Bool("obs-job-counters", false, "namespace per-job counters as job/<id>/... in the result")
		obsSLO       = flag.String("obs-slo", "", "SLO spec evaluated into the result (exit 1 on failure), e.g. 'wait_p99_sec<=2;utilization_pct>=60'")
	)
	flag.Parse()

	cfg := fleet.Config{
		Nodes:         *nodes,
		Jobs:          *jobs,
		Seed:          *seed,
		Workers:       *workers,
		Backfill:      *backfill,
		BackfillDepth: *depth,
		Share:         *share,
		ArrivalMean:   sim.Duration(*arrival),
		Counters:      *counters,
		PerJob:        *perjob,
	}
	if *interf != "" {
		plan, err := cliflags.ParseFaults(*interf)
		if err != nil {
			fatal(err)
		}
		cfg.Interference = plan
	}
	kind, err := cliflags.ParseSched(*schedF)
	if err != nil {
		fatal(err)
	}
	withSched := func(p fleet.KernelPolicy) fleet.KernelPolicy {
		if kind == "" {
			return p
		}
		return fleet.WithSched(p, kind)
	}

	obsOn := *obsTimeline != "" || *obsDecisions != "" || *obsJobCtrs || *obsSLO != ""
	if obsOn && *compare {
		fatal(fmt.Errorf("-obs-* flags apply to a single run; drop -compare or use mkobs run per policy"))
	}
	var obsOpts *obs.Options
	if obsOn {
		obsOpts = &obs.Options{JobCounters: *obsJobCtrs}
		if *obsTimeline != "" {
			obsOpts.Timeline = obs.NewTimeline(cfg.Nodes, max(cfg.Share, 1), 0)
		}
		if *obsDecisions != "" {
			obsOpts.Decisions = obs.NewDecisionLog()
		}
		cfg.Observe = obsOpts
		if *obsSLO != "" {
			slo, err := obs.ParseSLO(*obsSLO)
			if err != nil {
				fatal(err)
			}
			cfg.SLO = slo
		}
	}

	if *compare {
		results := make([]*fleet.Result, 0, len(fleet.PolicyNames()))
		for _, name := range fleet.PolicyNames() {
			pol, err := fleet.ParsePolicy(name, cfg.Seed, cfg.Workers, cfg.Interference)
			if err != nil {
				fatal(err)
			}
			c := cfg
			c.Policy = withSched(pol)
			res, err := fleet.Run(c)
			if err != nil {
				fatal(err)
			}
			results = append(results, res)
		}
		if *jsonOut {
			emitJSON(results)
			return
		}
		tbl := stats.NewTable("policy", "jobs/h", "util %", "wait p50 s", "wait p99 s", "backfilled", "interfered")
		for _, r := range results {
			tbl.AddRowf("%s|%.1f|%.1f|%.3f|%.3f|%d|%d",
				r.Policy, r.JobsPerHour, r.UtilizationPct, r.WaitP50Sec, r.WaitP99Sec,
				r.Backfilled, r.Interfered)
		}
		fmt.Print(tbl.Render())
		return
	}

	pol, err := fleet.ParsePolicy(*policy, cfg.Seed, cfg.Workers, cfg.Interference)
	if err != nil {
		fatal(err)
	}
	cfg.Policy = withSched(pol)
	res, err := fleet.Run(cfg)
	if err != nil {
		fatal(err)
	}
	if *obsTimeline != "" {
		if err := os.WriteFile(*obsTimeline, obsOpts.Timeline.JSON(), 0o644); err != nil {
			fatal(err)
		}
	}
	if *obsDecisions != "" {
		out, err := obsOpts.Decisions.JSON()
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*obsDecisions, out, 0o644); err != nil {
			fatal(err)
		}
	}
	sloExit := func() {
		if res.SLO != nil && !res.SLO.Passed {
			os.Exit(1)
		}
	}
	if *jsonOut {
		emitJSON(res)
		sloExit()
		return
	}

	fmt.Printf("facility: %d nodes (share %d), %d jobs, policy %s\n",
		res.FacilityNodes, res.Share, res.Jobs, res.Policy)
	fmt.Printf("  makespan:    %.3f s (virtual)\n", res.MakespanSec)
	fmt.Printf("  throughput:  %.1f jobs/hour\n", res.JobsPerHour)
	fmt.Printf("  utilization: %.1f%%\n", res.UtilizationPct)
	fmt.Printf("  queue wait:  p50 %.3fs  p99 %.3fs  max %.3fs  mean %.3fs\n",
		res.WaitP50Sec, res.WaitP99Sec, res.WaitMaxSec, res.WaitMeanSec)
	fmt.Printf("  backfilled:  %d jobs; interfered: %d jobs\n", res.Backfilled, res.Interfered)
	fmt.Print("  kernels:    ")
	for _, k := range slices.Sorted(maps.Keys(res.KernelJobs)) {
		fmt.Printf(" %s:%d", k, res.KernelJobs[k])
	}
	fmt.Println()
	if *counters && len(res.Counters) > 0 {
		fmt.Println("  counters:")
		for _, k := range slices.Sorted(maps.Keys(res.Counters)) {
			fmt.Printf("    %-32s %d\n", k, res.Counters[k])
		}
	}
	if *perjob {
		fmt.Println("  per-job outcomes: (use -json for machine-readable output)")
		for i, o := range res.PerJob {
			if i >= 10 {
				fmt.Printf("    ... %d more jobs\n", len(res.PerJob)-i)
				break
			}
			kern := o.Kernel
			if o.Sched != "" {
				kern += "/" + o.Sched
			}
			fmt.Printf("    job %4d  %-10s %-14s %3d nodes  wait %8.3fs  run %7.3fs\n",
				o.ID, o.App, kern, o.Nodes, o.WaitSec, o.ElapsedSec)
		}
	}
	if res.SLO != nil {
		fmt.Println("  slo:")
		for _, r := range res.SLO.Results {
			verdict := "pass"
			if !r.Pass {
				verdict = "FAIL"
			}
			fmt.Printf("    %-4s %s%s%g (observed %g)\n", verdict, r.Metric, r.Op, r.Threshold, r.Value)
		}
	}
	sloExit()
}

func emitJSON(v any) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mkfleet:", err)
	os.Exit(1)
}
