// Command mkexperiments regenerates the paper's tables and figures.
//
// Usage:
//
//	mkexperiments                 # everything, full sweeps, 5 reps
//	mkexperiments -quick          # three node counts per app
//	mkexperiments -only fig5b     # a single artifact
//	mkexperiments -workers 1      # sequential fan-out (same output, slower)
//
// Artifacts: fig4, fig5a, fig5b, fig6a, fig6b, table1, ltp, brktrace,
// proxyopts, ccsqcd-ddr, corespec, quadrant, ablations, resilience,
// facility, schedsweep.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"mklite"
	"mklite/internal/cliflags"
)

func main() {
	var (
		quick    = flag.Bool("quick", false, "restrict sweeps to three node counts per app")
		reps     = flag.Int("reps", 5, "repetitions per data point")
		seed     = cliflags.Seed(flag.CommandLine)
		only     = flag.String("only", "", "comma-separated artifact subset")
		workers  = cliflags.Workers(flag.CommandLine)
		counters = cliflags.Counters(flag.CommandLine)
		metricsF = cliflags.Metrics(flag.CommandLine)
		faults   = cliflags.Faults(flag.CommandLine)
		sloSpec  = cliflags.SLO(flag.CommandLine)
		schedF   = cliflags.Sched(flag.CommandLine)
		jsonOut  = flag.String("json", "", "write the schedsweep figures as byte-stable JSON to this file (schedsweep artifact only)")
	)
	flag.Parse()

	cfg := mklite.ExperimentConfig{Reps: *reps, Seed: *seed, Quick: *quick, Workers: *workers, Counters: *counters, Metrics: *metricsF, Sched: *schedF}
	if *faults != "" {
		plan, err := cliflags.ParseFaults(*faults)
		check(err)
		cfg.Faults = plan
	}
	if *sloSpec != "" {
		cfg.SLO = *sloSpec
		if *sloSpec == "default" {
			cfg.SLO = mklite.DefaultFacilitySLO
		}
	}
	want := map[string]bool{}
	if *only != "" {
		for _, k := range strings.Split(*only, ",") {
			want[strings.TrimSpace(k)] = true
		}
	}
	sel := func(name string) bool { return len(want) == 0 || want[name] }

	if sel("fig4") {
		figs, sum, err := mklite.ReproduceFigure4(cfg)
		check(err)
		fmt.Println("==== Figure 4: relative median performance vs Linux ====")
		for _, fig := range figs {
			fmt.Print(fig.Render())
			rel := mklite.Relative(fig)
			fmt.Print(rel.Render())
			printCounters(fig)
			fmt.Println()
		}
		fmt.Printf("Cross-application summary: median improvement %.2fx (paper: 1.09x);"+
			" best %.2fx on %s/%s at %d nodes (paper: up to 3.8x)\n\n",
			sum.MedianImprovement, sum.BestImprovement, sum.BestApp, sum.BestKernel, sum.BestNodes)
	}
	if sel("fig5a") {
		fig, err := mklite.ReproduceFigure5a(cfg)
		check(err)
		fmt.Println("==== Figure 5a: CCS-QCD, % of Linux median ====")
		fmt.Print(fig.Render())
		printCounters(fig)
		fmt.Println()
	}
	if sel("fig5b") {
		fig, err := mklite.ReproduceFigure5b(cfg)
		check(err)
		fmt.Println("==== Figure 5b: MiniFE scaling (Mflops) ====")
		fmt.Print(fig.Render())
		printCounters(fig)
		fmt.Println()
	}
	if sel("fig6a") {
		fig, err := mklite.ReproduceFigure6a(cfg)
		check(err)
		fmt.Println("==== Figure 6a: Lulesh 2.0 scaling (zones/s) ====")
		fmt.Print(fig.Render())
		printCounters(fig)
		fmt.Println()
	}
	if sel("fig6b") {
		fig, err := mklite.ReproduceFigure6b(cfg)
		check(err)
		fmt.Println("==== Figure 6b: LAMMPS scaling (timesteps/s) ====")
		fmt.Print(fig.Render())
		printCounters(fig)
		fmt.Println()
	}
	if sel("table1") {
		_, rendered, err := mklite.ReproduceTableI(cfg)
		check(err)
		fmt.Println("==== Table I: Lulesh in DDR4 with/without brk optimizations ====")
		fmt.Println("(paper: Linux 8,959 zones/s 100.0% | mOS heap off 106.6% | mOS regular 121.0%)")
		fmt.Print(rendered)
		fmt.Println()
	}
	if sel("ltp") {
		_, rendered, err := mklite.Conformance()
		check(err)
		fmt.Println("==== Section III-D: LTP syscall conformance ====")
		fmt.Println("(paper: McKernel fails 32, mOS fails 111 of 3,328)")
		fmt.Print(rendered)
		fmt.Println()
	}
	if sel("brktrace") {
		traces, err := mklite.ReproduceBrkTrace(cfg)
		check(err)
		fmt.Println("==== Section IV: Lulesh brk trace ====")
		fmt.Println("(paper, -s 30: 7,526 queries / 3,028 grows / 1,499 shrinks; 87 MB peak; 22 GB cumulative)")
		for _, tr := range traces {
			fmt.Printf("%-9s %5d queries %5d grows %5d shrinks (%d calls); peak %d B; cumulative %d B; %d heap faults\n",
				tr.Kernel, tr.Queries, tr.Grows, tr.Shrinks, tr.Calls,
				tr.PeakBytes, tr.CumulativeBytes, tr.HeapFaults)
		}
		fmt.Println()
	}
	if sel("brktrace") {
		res, err := mklite.ReproduceBrkTraceS30()
		check(err)
		fmt.Println("==== Section IV: exact Lulesh -s30 brk trace replay (12,053 calls) ====")
		fmt.Println("(paper: 7,526 queries / 3,028 grows / 1,499 shrinks; 87 MB peak; 22 GB cumulative)")
		for _, r := range res {
			fmt.Printf("%-9s %d calls; peak %.1f MiB; cumulative %.1f GiB; %d faults; %.2f GiB zeroed; kernel time %.1f ms\n",
				r.Kernel, r.Calls, float64(r.PeakBytes)/(1<<20), float64(r.CumulativeBytes)/(1<<30),
				r.HeapFaults, float64(r.ZeroedBytes)/(1<<30), r.KernelTimeSecs*1e3)
		}
		fmt.Println()
	}
	if sel("proxyopts") {
		res, err := mklite.ReproduceProxyOptions(cfg)
		check(err)
		fmt.Println("==== Section IV: McKernel proxy options (premap + disable-sched-yield, 16 nodes) ====")
		fmt.Println("(paper: +9% AMG 2013, +2% MiniFE)")
		for _, r := range res {
			fmt.Printf("%-9s %+.1f%% (%.4g -> %.4g)\n", r.App, r.GainPercent, r.BaselineFOM, r.OptimizedFOM)
		}
		fmt.Println()
	}
	if sel("ccsqcd-ddr") {
		// Part of the Figure 5a discussion: McKernel DDR4-only run.
		res, err := mklite.Run("ccs-qcd", mklite.McKernel, ddrNodes(cfg), cfg.Seed, nil)
		check(err)
		ddr, err := mklite.Run("ccs-qcd", mklite.McKernel, ddrNodes(cfg), cfg.Seed, &mklite.Options{ForceDDROnly: true})
		check(err)
		fmt.Println("==== Section IV: CCS-QCD on McKernel, DDR4-only vs MCDRAM spill ====")
		fmt.Printf("(paper: ~5%% slowdown at 2,048 nodes)\nspill %.4g vs DDR-only %.4g: %.1f%% slowdown\n\n",
			res.FOM, ddr.FOM, (1-ddr.FOM/res.FOM)*100)
	}
	if sel("corespec") {
		rows, err := mklite.ReproduceCoreSpecialization(cfg)
		check(err)
		fmt.Println("==== Section III-A: core specialisation (Lulesh, 1 node) ====")
		fmt.Println("(paper: \"mOS using 64 or 66 cores beats Linux on 68 cores\")")
		for _, r := range rows {
			fmt.Printf("%-38s %10.4g (%.1f%%)\n", r.Config, r.FOM, r.Percent)
		}
		fmt.Println()
	}
	if sel("quadrant") {
		rows, err := mklite.ReproduceQuadrant(cfg)
		check(err)
		fmt.Println("==== Section III-B: clustering-mode trade-off (CCS-QCD, 64 nodes) ====")
		for _, r := range rows {
			fmt.Printf("%-36s %10.4g (%.1f%% of SNC-4 Linux)\n", r.Config, r.FOM, r.Percent)
		}
		fmt.Println()
	}
	if sel("schedsweep") {
		figs, err := mklite.ReproduceSchedSweep(cfg)
		check(err)
		fmt.Println("==== Scheduler sweep: noise-gap % by policy x kernel x nodes ====")
		fmt.Println("(gang aligns noise windows, tickless drops the tick sources, rr pays its quantum timer)")
		for _, fig := range figs {
			fmt.Print(fig.Render())
			fmt.Println()
		}
		if *jsonOut != "" {
			out, err := json.MarshalIndent(figs, "", "  ")
			check(err)
			check(os.WriteFile(*jsonOut, append(out, '\n'), 0o644))
			fmt.Fprintf(os.Stderr, "mkexperiments: wrote %s (%d bytes)\n", *jsonOut, len(out)+1)
		}
	}
	if sel("resilience") {
		fig, err := mklite.ReproduceResilience(cfg)
		check(err)
		fmt.Println("==== Resilience: one straggler poisons the allreduce (MiniFE) ====")
		fmt.Println("(fixed per-step detour on one node; slowdown grows as the job scales out)")
		fmt.Print(fig.Render())
		fmt.Println()
	}
	if sel("facility") {
		_, rendered, err := mklite.ReproduceFacility(cfg)
		check(err)
		fmt.Println("==== Facility: kernel-selection policies at datacenter scale ====")
		fmt.Println("(same seeded job stream, same facility; only the per-job kernel choice differs)")
		fmt.Print(rendered)
		fmt.Println()
	}
	if sel("ablations") {
		rep, err := mklite.ReproduceAblations(cfg)
		check(err)
		fmt.Println("==== Design-space ablations (section II claims) ====")
		fmt.Print(rep.Rendered)
		fmt.Println()
	}
}

// printCounters renders a figure's aggregated mechanism counters (set only
// when -counters is active).
func printCounters(fig mklite.Figure) {
	if len(fig.Counters) > 0 {
		fmt.Printf("mechanism counters across all %s runs:\n", fig.ID)
		fmt.Print(mklite.FormatCounters(fig.Counters))
	}
	if fig.MetricsText != "" {
		fmt.Printf("metrics profile across all %s runs:\n", fig.ID)
		fmt.Print(fig.MetricsText)
	}
}

func ddrNodes(cfg mklite.ExperimentConfig) int {
	if cfg.Quick {
		return 64
	}
	return 2048
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "mkexperiments:", err)
		os.Exit(1)
	}
}
