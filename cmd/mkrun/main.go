// Command mkrun executes one application benchmark on one kernel
// configuration and prints the figure of merit with a mechanism breakdown.
//
// Usage:
//
//	mkrun -app minife -kernel mckernel -nodes 1024
//	mkrun -app lulesh2.0 -compare -nodes 64
//	mkrun -app ccs-qcd -kernel mckernel -nodes 2048 -ddr-only
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"maps"
	"os"
	"slices"
	"strings"

	"mklite"
	"mklite/internal/cliflags"
)

func main() {
	var (
		appName   = flag.String("app", "minife", "application to run (see -list)")
		kernelStr = flag.String("kernel", "mckernel", "kernel: linux, mckernel or mos")
		nodes     = flag.Int("nodes", 64, "node count")
		seed      = cliflags.Seed(flag.CommandLine)
		compare   = flag.Bool("compare", false, "run all three kernels and compare")
		ddrOnly   = flag.Bool("ddr-only", false, "pin all memory to DDR4")
		premap    = flag.Bool("mpol-shm-premap", false, "McKernel: premap MPI shared-memory windows")
		noYield   = flag.Bool("disable-sched-yield", false, "McKernel: hijack sched_yield into a no-op")
		usFabric  = flag.Bool("userspace-fabric", false, "use a fabric with no syscalls on the message path")
		quadrant  = flag.Bool("quadrant", false, "run nodes in quadrant mode instead of SNC-4")
		schedF    = cliflags.Sched(flag.CommandLine)
		jsonOut   = flag.Bool("json", false, "emit results as JSON")
		sweep     = flag.Bool("sweep", false, "sweep the app's full node-count list")
		trace     = flag.Bool("trace", false, "print a per-timestep breakdown (first 12 steps)")
		counters  = cliflags.Counters(flag.CommandLine)
		metricsF  = cliflags.Metrics(flag.CommandLine)
		metricsJ  = flag.String("metrics-json", "", "write the run's mklite-metrics/v1 JSON report to this file (implies -metrics)")
		traceOut  = flag.String("trace-json", "", "write the run's Chrome trace-event JSON to this file")
		faults    = cliflags.Faults(flag.CommandLine)
		list      = flag.Bool("list", false, "list applications and exit")
	)
	flag.Parse()

	if *list {
		for _, a := range mklite.Apps() {
			fmt.Printf("%-10s %3d ranks/node x %2d threads  %-14s %s\n",
				a.Name, a.RanksPerNode, a.ThreadsPerRank, "["+a.Unit+"]", a.Desc)
		}
		return
	}

	opts := &mklite.Options{
		ForceDDROnly:      *ddrOnly,
		MpolShmPremap:     *premap,
		DisableSchedYield: *noYield,
		UserSpaceFabric:   *usFabric,
		Quadrant:          *quadrant,
		Sched:             *schedF,
		Observe: mklite.Observe{
			Trace:    *trace,
			Counters: *counters,
			Metrics:  *metricsF || *metricsJ != "",
			Events:   *traceOut != "",
		},
	}
	if *faults != "" {
		plan, err := cliflags.ParseFaults(*faults)
		if err != nil {
			fatal(err)
		}
		opts.Faults = plan
	}

	if *sweep {
		counts, err := mklite.AppNodeCounts(*appName)
		if err != nil {
			fatal(err)
		}
		var all []mklite.Result
		for _, n := range counts {
			results, err := mklite.Compare(*appName, n, *seed, opts)
			if err != nil {
				fatal(err)
			}
			all = append(all, results...)
			if !*jsonOut {
				linux := results[0].FOM
				fmt.Printf("%6d nodes:", n)
				for _, r := range results {
					fmt.Printf("  %s %.4g (%.2fx)", r.Kernel, r.FOM, r.FOM/linux)
				}
				fmt.Println()
			}
		}
		if *jsonOut {
			emitJSON(all)
		}
		return
	}

	if *compare {
		results, err := mklite.Compare(*appName, *nodes, *seed, opts)
		if err != nil {
			fatal(err)
		}
		if *jsonOut {
			emitJSON(results)
			return
		}
		linux := results[0].FOM
		for _, r := range results {
			fmt.Printf("%-9s %12.4g %-14s (%.2fx Linux)  elapsed %.4gs\n",
				r.Kernel, r.FOM, r.Unit, r.FOM/linux, r.ElapsedSeconds)
		}
		return
	}

	k, err := mklite.ParseKernel(*kernelStr)
	if err != nil {
		fatal(err)
	}
	r, err := mklite.Run(*appName, k, *nodes, *seed, opts)
	if err != nil {
		fatal(err)
	}
	if *traceOut != "" {
		if err := os.WriteFile(*traceOut, r.TraceJSON, 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "mkrun: wrote %s (%d bytes)\n", *traceOut, len(r.TraceJSON))
	}
	if *metricsJ != "" {
		if err := os.WriteFile(*metricsJ, r.MetricsJSON, 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "mkrun: wrote %s (%d bytes)\n", *metricsJ, len(r.MetricsJSON))
	}
	if *jsonOut {
		emitJSON(r)
		return
	}
	fmt.Printf("%s on %s, %d nodes (%d ranks)\n", r.App, r.Kernel, r.Nodes, r.Ranks)
	fmt.Printf("  FOM:     %.6g %s\n", r.FOM, r.Unit)
	fmt.Printf("  elapsed: %.6g s (timed phase)\n", r.ElapsedSeconds)
	fmt.Println("  breakdown:")
	for _, k := range slices.Sorted(maps.Keys(r.Breakdown)) {
		fmt.Printf("    %-10s %10.6f s (%5.1f%%)\n", k, r.Breakdown[k],
			r.Breakdown[k]/r.ElapsedSeconds*100)
	}
	if r.HeapGrows > 0 {
		fmt.Printf("  heap: %d queries, %d grows, %d shrinks; peak %d B, cumulative %d B, %d faults\n",
			r.HeapQueries, r.HeapGrows, r.HeapShrinks, r.HeapPeakBytes, r.HeapGrownBytes, r.HeapFaults)
	}
	fmt.Printf("  MCDRAM residency: %d bytes; demand-paged ranks: %d\n", r.MCDRAMBytes, r.DemandRanks)
	if r.Retries > 0 || r.Degraded {
		fmt.Printf("  resilience: %d retries, %.4gs recovery", r.Retries, r.RecoverySeconds)
		if r.Degraded {
			fmt.Printf(", degraded (-%d nodes)", r.LostNodes)
		}
		fmt.Println()
	}
	if *counters && len(r.Counters) > 0 {
		fmt.Println("  mechanism counters:")
		for line := range strings.Lines(mklite.FormatCounters(r.Counters)) {
			fmt.Print("    ", line)
		}
	}
	if opts.Observe.Metrics && r.MetricsText != "" {
		fmt.Println("  metrics profile:")
		for line := range strings.Lines(r.MetricsText) {
			fmt.Print("    ", line)
		}
	}
	if *trace && len(r.StepTrace) > 0 {
		fmt.Println("  per-step trace (ms):")
		fmt.Printf("    %4s %9s %9s %9s %9s %9s %9s %9s\n",
			"step", "compute", "memory", "heap", "syscall", "sched", "comm", "noise")
		for i, s := range r.StepTrace {
			if i >= 12 {
				fmt.Printf("    ... %d more steps\n", len(r.StepTrace)-i)
				break
			}
			fmt.Printf("    %4d %9.3f %9.3f %9.3f %9.3f %9.3f %9.3f %9.3f\n", i,
				s.Compute*1e3, s.Memory*1e3, s.Heap*1e3, s.Syscall*1e3, s.Sched*1e3, s.Comm*1e3, s.Noise*1e3)
		}
	}
}

func emitJSON(v any) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mkrun:", err)
	os.Exit(1)
}
