// Command mklint is mklite's determinism multichecker: it runs the custom
// analyzer suite from internal/analysis over the named packages and exits
// non-zero if any diagnostic survives. It is the static half of the
// determinism gate; `go test -race ./...` and the seed-replay test in
// determinism_test.go are the runtime half.
//
// Usage:
//
//	go run ./cmd/mklint ./...             # analyze the whole module
//	go run ./cmd/mklint -fix ./...        # apply machine-applicable fixes
//	go run ./cmd/mklint -sarif out.sarif ./...  # also write SARIF 2.1.0
//	go run ./cmd/mklint -ignores ./...    # print the suppression inventory
//	go run ./cmd/mklint -vet ./...        # also run go vet on the same patterns
//	go run ./cmd/mklint -list             # print the analyzer suite and exit
//
// Diagnostics are one per line, in the familiar file:line:col form:
//
//	internal/ltp/ltp.go:106:2: maprange: iteration over map specialCounts ...
//
// A finding can be suppressed with //mklint:ignore <analyzer> <reason> on
// the offending line or the line above; the ignoreaudit analyzer reports
// directives that have gone stale. See docs/LINTING.md.
//
// Exit status: 0 when every loaded package is clean, 1 when diagnostics
// were reported (or go vet failed under -vet, or -ignores found stale
// directives), 2 when any package failed to load — diagnostics for the
// packages that did load are still printed first — or on an internal
// error.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"

	"mklite/internal/analysis"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		list    = flag.Bool("list", false, "list the analyzers and exit")
		vet     = flag.Bool("vet", false, "also run `go vet` on the same patterns")
		fix     = flag.Bool("fix", false, "apply machine-applicable suggested fixes to the source")
		sarif   = flag.String("sarif", "", "write diagnostics as SARIF 2.1.0 to `file` (\"-\" for stdout)")
		ignores = flag.Bool("ignores", false, "print the //mklint:ignore suppression inventory; exit 1 if any is stale")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: mklint [-list] [-vet] [-fix] [-sarif file] [-ignores] [packages]\n\n")
		fmt.Fprintf(os.Stderr, "mklint enforces mklite's determinism contract; see docs/LINTING.md.\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	wd, err := os.Getwd()
	if err != nil {
		return fatal(err)
	}
	pkgs, failures, err := analysis.Load(wd, patterns...)
	if err != nil {
		return fatal(err)
	}
	result, err := analysis.Analyze(pkgs, analysis.All())
	if err != nil {
		return fatal(err)
	}
	diags := result.Diagnostics

	if *ignores {
		for _, line := range result.RenderIgnores() {
			fmt.Println(line)
		}
		if n := result.StaleIgnores(); n > 0 {
			fmt.Fprintf(os.Stderr, "mklint: %d stale //mklint:ignore directive(s)\n", n)
			return 1
		}
		return 0
	}

	if *fix {
		changed, skipped, err := analysis.ApplyFixes(diags)
		if err != nil {
			return fatal(err)
		}
		for _, f := range changed {
			fmt.Printf("fixed %s\n", f)
		}
		if skipped > 0 {
			fmt.Fprintf(os.Stderr, "mklint: %d overlapping fix(es) skipped; re-run -fix after review\n", skipped)
		}
		// Report what remains: diagnostics that carried no fix.
		for _, d := range diags {
			if len(d.SuggestedFixes) == 0 {
				fmt.Println(d)
			}
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}

	if *sarif != "" {
		out := os.Stdout
		if *sarif != "-" {
			f, err := os.Create(*sarif)
			if err != nil {
				return fatal(err)
			}
			defer f.Close()
			out = f
		}
		if err := analysis.WriteSARIF(out, wd, analysis.All(), diags); err != nil {
			return fatal(err)
		}
	}

	failed := len(diags) > 0
	if *vet {
		cmd := exec.Command("go", append([]string{"vet"}, patterns...)...)
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		if err := cmd.Run(); err != nil {
			failed = true
		}
	}
	// Load failures dominate: partial analysis is not a clean bill.
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "mklint:", f.Error())
		}
		return 2
	}
	if failed {
		return 1
	}
	return 0
}

func fatal(err error) int {
	fmt.Fprintln(os.Stderr, "mklint:", err)
	return 2
}
