// Command mklint is mklite's determinism multichecker: it runs the custom
// analyzer suite from internal/analysis over the named packages and exits
// non-zero if any diagnostic survives. It is the static half of the
// determinism gate; `go test -race ./...` and the seed-replay test in
// determinism_test.go are the runtime half.
//
// Usage:
//
//	go run ./cmd/mklint ./...        # analyze the whole module
//	go run ./cmd/mklint -vet ./...   # also run go vet on the same patterns
//	go run ./cmd/mklint -list        # print the analyzer suite and exit
//
// Diagnostics are one per line, in the familiar file:line:col form:
//
//	internal/ltp/ltp.go:106:2: maprange: iteration over map specialCounts ...
//
// A finding can be suppressed with //mklint:ignore <analyzer> <reason> on
// the offending line or the line above; see docs/LINTING.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"

	"mklite/internal/analysis"
)

func main() {
	var (
		list = flag.Bool("list", false, "list the analyzers and exit")
		vet  = flag.Bool("vet", false, "also run `go vet` on the same patterns")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: mklint [-list] [-vet] [packages]\n\n")
		fmt.Fprintf(os.Stderr, "mklint enforces mklite's determinism contract; see docs/LINTING.md.\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	wd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	pkgs, err := analysis.Load(wd, patterns...)
	if err != nil {
		fatal(err)
	}
	diags, err := analysis.Run(pkgs, analysis.All())
	if err != nil {
		fatal(err)
	}
	for _, d := range diags {
		fmt.Println(d)
	}

	failed := len(diags) > 0
	if *vet {
		cmd := exec.Command("go", append([]string{"vet"}, patterns...)...)
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		if err := cmd.Run(); err != nil {
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mklint:", err)
	os.Exit(2)
}
