// Command mkobs is the facility observability CLI (see
// docs/OBSERVABILITY.md): it runs an observed fleet simulation and exports
// the cross-layer artifacts — the node-occupancy timeline (Chrome
// trace-event JSON, loadable in Perfetto), the backfill decision log, and
// the job-namespaced counter view — and it judges artifacts after the fact:
// SLO evaluation with a pass/fail exit status, timeline validation, and
// decision-log diffing.
//
// Usage:
//
//	mkobs run -nodes 64 -jobs 120 -timeline tl.json -decisions dl.json -json
//	mkobs run -job-counters -job-events -timeline tl.json
//	mkobs check -slo 'wait_p99_sec<=2;utilization_pct>=60;degraded_jobs<=0' result.json
//	mkobs check -slo 'utilization_pct>=60' -nodes 64 -jobs 120   # run, then check
//	mkobs validate tl.json
//	mkobs diff dl-a.json dl-b.json
//
// Everything is a pure function of the flags: same flags, same artifact
// bytes, at any -workers width. check and diff exit 1 on failure/difference,
// so they slot straight into CI.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"mklite/internal/fleet"
	"mklite/internal/obs"
	"mklite/internal/sim"
	"mklite/internal/trace"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "run":
		run(os.Args[2:])
	case "check":
		check(os.Args[2:])
	case "validate":
		validate(os.Args[2:])
	case "diff":
		diff(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "mkobs: unknown subcommand %q\n\n", os.Args[1])
		usage()
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage:
  mkobs run [fleet flags] [-timeline file] [-decisions file] [-job-counters] [-job-events] [-slo spec] [-json]
  mkobs check -slo spec [fleet flags | result.json]
  mkobs validate timeline.json
  mkobs diff decisions-a.json decisions-b.json
`)
	os.Exit(2)
}

// fleetFlags registers the fleet-shaping subset of mkfleet's flags on fs and
// returns a builder that assembles the Config after parsing.
func fleetFlags(fs *flag.FlagSet) func() fleet.Config {
	var (
		nodes    = fs.Int("nodes", 256, "facility size in nodes")
		jobs     = fs.Int("jobs", 1000, "number of jobs in the stream")
		seed     = fs.Uint64("seed", 1, "facility seed")
		workers  = fs.Int("workers", 0, "par fan-out width (0 = GOMAXPROCS); output is identical at any width")
		policy   = fs.String("policy", "heuristic", "kernel-selection policy")
		backfill = fs.Bool("backfill", true, "conservative backfill (false = strict FIFO)")
		depth    = fs.Int("backfill-depth", 0, "max queued jobs examined per backfill pass (0 = default)")
		share    = fs.Int("share", 1, "node oversubscription factor")
		arrival  = fs.Duration("arrival-mean", 0, "mean job interarrival gap (virtual time; 0 = default)")
		counters = fs.Bool("counters", false, "merge per-job mechanism counters into the result")
	)
	return func() fleet.Config {
		cfg := fleet.Config{
			Nodes:         *nodes,
			Jobs:          *jobs,
			Seed:          *seed,
			Workers:       *workers,
			Backfill:      *backfill,
			BackfillDepth: *depth,
			Share:         *share,
			ArrivalMean:   sim.Duration(*arrival),
			Counters:      *counters,
		}
		pol, err := fleet.ParsePolicy(*policy, cfg.Seed, cfg.Workers, nil)
		if err != nil {
			fatal(err)
		}
		cfg.Policy = pol
		return cfg
	}
}

func run(args []string) {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	buildCfg := fleetFlags(fs)
	var (
		tlPath      = fs.String("timeline", "", "write the facility timeline (Chrome trace JSON) to this file ('-' = stdout)")
		dlPath      = fs.String("decisions", "", "write the backfill decision log to this file ('-' = stdout)")
		jobCounters = fs.Bool("job-counters", false, "namespace per-job counters as job/<id>/... in the result")
		jobEvents   = fs.Bool("job-events", false, "merge each job's cluster/kernel events onto its own timeline track (needs -timeline)")
		sloSpec     = fs.String("slo", "", "SLO spec evaluated into the result, e.g. 'wait_p99_sec<=2;utilization_pct>=60'")
		jsonOut     = fs.Bool("json", false, "emit the fleet result as JSON (byte-stable)")
	)
	if err := fs.Parse(args); err != nil {
		fatal(err)
	}
	if *jobEvents && *tlPath == "" {
		fatal(fmt.Errorf("-job-events needs -timeline to merge into"))
	}
	cfg := buildCfg()

	o := &obs.Options{JobCounters: *jobCounters, JobEvents: *jobEvents}
	if *tlPath != "" {
		o.Timeline = obs.NewTimeline(cfg.Nodes, max(cfg.Share, 1), 0)
	}
	if *dlPath != "" {
		o.Decisions = obs.NewDecisionLog()
	}
	cfg.Observe = o
	if *sloSpec != "" {
		slo, err := obs.ParseSLO(*sloSpec)
		if err != nil {
			fatal(err)
		}
		cfg.SLO = slo
	}

	res, err := fleet.Run(cfg)
	if err != nil {
		fatal(err)
	}
	if *tlPath != "" {
		writeArtifact(*tlPath, o.Timeline.JSON())
	}
	if *dlPath != "" {
		out, err := o.Decisions.JSON()
		if err != nil {
			fatal(err)
		}
		writeArtifact(*dlPath, out)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fatal(err)
		}
		return
	}
	fmt.Printf("facility: %d nodes (share %d), %d jobs, policy %s\n",
		res.FacilityNodes, res.Share, res.Jobs, res.Policy)
	fmt.Printf("  throughput %.1f jobs/h, utilization %.1f%%, wait p99 %.3fs\n",
		res.JobsPerHour, res.UtilizationPct, res.WaitP99Sec)
	if *tlPath != "" {
		fmt.Printf("  timeline:  %s (%d events)\n", *tlPath, o.Timeline.Events().Len())
	}
	if *dlPath != "" {
		fmt.Printf("  decisions: %s (%d records)\n", *dlPath, o.Decisions.Len())
	}
	if res.SLO != nil {
		printSLO(res.SLO)
		if !res.SLO.Passed {
			os.Exit(1)
		}
	}
}

func check(args []string) {
	fs := flag.NewFlagSet("check", flag.ExitOnError)
	buildCfg := fleetFlags(fs)
	sloSpec := fs.String("slo", "", "SLO spec to enforce (required)")
	if err := fs.Parse(args); err != nil {
		fatal(err)
	}
	if *sloSpec == "" {
		fatal(fmt.Errorf("check needs -slo"))
	}
	slo, err := obs.ParseSLO(*sloSpec)
	if err != nil {
		fatal(err)
	}

	var res *fleet.Result
	switch fs.NArg() {
	case 0:
		// No artifact: run the configured fleet and judge it.
		res, err = fleet.Run(buildCfg())
		if err != nil {
			fatal(err)
		}
	case 1:
		// Judge a saved mkfleet/mkobs result after the fact, using the same
		// metric map the in-run watchdog sees (Result.SLOValues).
		data, err := os.ReadFile(fs.Arg(0))
		if err != nil {
			fatal(err)
		}
		res = &fleet.Result{}
		if err := json.Unmarshal(data, res); err != nil {
			fatal(fmt.Errorf("%s: %w", fs.Arg(0), err))
		}
	default:
		fatal(fmt.Errorf("check takes at most one result file, got %d args", fs.NArg()))
	}

	// Evaluate the requested spec regardless of any report stored in the
	// artifact — check judges with ITS rules, via the same metric map the
	// in-run watchdog uses.
	rep, err := slo.Eval(res.SLOValues())
	if err != nil {
		fatal(err)
	}
	printSLO(rep)
	if !rep.Passed {
		os.Exit(1)
	}
}

func printSLO(rep *obs.SLOReport) {
	fmt.Println("  slo:")
	for _, r := range rep.Results {
		verdict := "pass"
		if !r.Pass {
			verdict = "FAIL"
		}
		fmt.Printf("    %-4s %s%s%g (observed %g)\n", verdict, r.Metric, r.Op, r.Threshold, r.Value)
	}
	if rep.Passed {
		fmt.Println("  slo: PASS")
	} else {
		fmt.Println("  slo: FAIL")
	}
}

func validate(args []string) {
	fs := flag.NewFlagSet("validate", flag.ExitOnError)
	if err := fs.Parse(args); err != nil {
		fatal(err)
	}
	if fs.NArg() != 1 {
		fatal(fmt.Errorf("validate needs exactly one timeline file, got %d args", fs.NArg()))
	}
	data, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		fatal(err)
	}
	if err := trace.Validate(data); err != nil {
		fatal(fmt.Errorf("%s: %w", fs.Arg(0), err))
	}
	fmt.Printf("%s: valid %s timeline\n", fs.Arg(0), trace.EventsSchema)
}

func diff(args []string) {
	fs := flag.NewFlagSet("diff", flag.ExitOnError)
	if err := fs.Parse(args); err != nil {
		fatal(err)
	}
	if fs.NArg() != 2 {
		fatal(fmt.Errorf("diff needs two decision logs, got %d args", fs.NArg()))
	}
	logs := make([][]obs.Decision, 2)
	for i := range 2 {
		data, err := os.ReadFile(fs.Arg(i))
		if err != nil {
			fatal(err)
		}
		logs[i], err = obs.ReadDecisions(data)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", fs.Arg(i), err))
		}
	}
	rows := obs.DiffDecisions(logs[0], logs[1])
	if len(rows) == 0 {
		fmt.Printf("identical: %d decisions\n", len(logs[0]))
		return
	}
	for _, row := range rows {
		fmt.Println(row)
	}
	os.Exit(1)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mkobs:", err)
	os.Exit(1)
}

func writeArtifact(path string, data []byte) {
	if path == "-" {
		if _, err := os.Stdout.Write(data); err != nil {
			fatal(err)
		}
		return
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fatal(err)
	}
}
