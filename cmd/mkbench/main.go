// Command mkbench judges wall-clock benchmark artifacts. It is the CI
// bench-regression gate: the bench smoke tests emit BENCH_PR4.json
// ("mklite-bench/v1", best-of-N seconds per mode with rep count and
// spread), and mkbench compares a fresh measurement against the
// checked-in baseline with tolerance bands widened by both runs'
// recorded spreads — scheduler noise is not a regression.
//
// Usage:
//
//	mkbench compare baseline.json current.json
//	mkbench compare -tol 25 -tolpp 5 baseline.json current.json
//	mkbench compare -budget counters_overhead_percent=5 baseline.json current.json
//	mkbench show BENCH_PR4.json
//
// compare exits 1 when a mode slowed beyond its band, a derived
// "*_percent" overhead grew beyond -tolpp percentage points, a speedup
// shrank beyond -tol percent, or a -budget ceiling is exceeded.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"mklite/internal/benchfmt"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "compare":
		compare(os.Args[2:])
	case "show":
		show(os.Args[2:])
	case "trend":
		trend(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "mkbench: unknown subcommand %q\n\n", os.Args[1])
		usage()
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage:
  mkbench compare [-tol pct] [-tolpp points] [-budget name=max]... baseline.json current.json
  mkbench show file.json
  mkbench trend [-tol pct] [-tolpp points] [-fail] BENCH_PR2.json BENCH_PR3.json ...
`)
	os.Exit(2)
}

// budgets collects repeated -budget name=max flags.
type budgets []struct {
	name string
	max  float64
}

func (bs *budgets) String() string { return fmt.Sprintf("%d budgets", len(*bs)) }

func (bs *budgets) Set(v string) error {
	name, maxStr, ok := strings.Cut(v, "=")
	if !ok {
		return fmt.Errorf("budget %q: want name=max", v)
	}
	max, err := strconv.ParseFloat(maxStr, 64)
	if err != nil {
		return fmt.Errorf("budget %q: %w", v, err)
	}
	*bs = append(*bs, struct {
		name string
		max  float64
	}{name, max})
	return nil
}

func compare(args []string) {
	fs := flag.NewFlagSet("compare", flag.ExitOnError)
	tol := fs.Float64("tol", 25, "relative tolerance in percent for mode seconds and speedups (widened per mode by both runs' recorded spreads)")
	tolPP := fs.Float64("tolpp", 5, "tolerance in percentage points for derived *_percent metrics")
	var buds budgets
	fs.Var(&buds, "budget", "absolute ceiling on a derived metric of the current file, name=max (repeatable)")
	fs.Parse(args)
	if fs.NArg() != 2 {
		fatal(fmt.Errorf("compare needs a baseline and a current file, got %d args", fs.NArg()))
	}
	oldF, newF := read(fs.Arg(0)), read(fs.Arg(1))

	res := benchfmt.Compare(oldF, newF, *tol, *tolPP)
	fmt.Printf("mkbench compare: %s vs %s (tol %.0f%%, %.0fpp)\n", fs.Arg(0), fs.Arg(1), *tol, *tolPP)
	fmt.Print(res.Report)

	failures := res.Regressions
	for _, bud := range buds {
		if msg := newF.CheckBudget(bud.name, bud.max); msg != "" {
			failures = append(failures, msg)
		}
	}
	if len(failures) > 0 {
		fmt.Println("\nFAIL:")
		for _, f := range failures {
			fmt.Println("  " + f)
		}
		os.Exit(1)
	}
	fmt.Println("\nPASS: no regressions beyond tolerance")
}

func show(args []string) {
	fs := flag.NewFlagSet("show", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 1 {
		fatal(fmt.Errorf("show needs exactly one file, got %d args", fs.NArg()))
	}
	f := read(fs.Arg(0))
	// A self-comparison renders every row with zero deltas — one table
	// formatter for both subcommands.
	fmt.Printf("%s: %s, GOMAXPROCS=%d\n", fs.Arg(0), f.Figure, f.Maxprocs)
	fmt.Print(benchfmt.Compare(f, f, 100, 100).Report)
}

// trend renders the cross-PR perf trajectory from the checked-in BENCH_*
// files, oldest first, flagging steps that regress beyond their spread-aware
// band. Legacy pre-schema files (BENCH_PR2/PR3) are accepted via the lenient
// reader. History is informational by default — pass -fail to gate on it.
func trend(args []string) {
	fs := flag.NewFlagSet("trend", flag.ExitOnError)
	tol := fs.Float64("tol", 25, "relative tolerance in percent for mode seconds and speedups (widened per step by both points' recorded spreads)")
	tolPP := fs.Float64("tolpp", 5, "tolerance in percentage points for derived *_percent metrics")
	failFlag := fs.Bool("fail", false, "exit 1 when any step in the history regresses beyond its band")
	fs.Parse(args)
	if fs.NArg() < 1 {
		fatal(fmt.Errorf("trend needs at least one benchmark file"))
	}
	entries := make([]benchfmt.TrendEntry, 0, fs.NArg())
	for _, path := range fs.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			fatal(err)
		}
		f, err := benchfmt.ReadLenient(data)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", path, err))
		}
		entries = append(entries, benchfmt.TrendEntry{Label: strings.TrimSuffix(filepath.Base(path), ".json"), File: f})
	}
	res := benchfmt.Trend(entries, *tol, *tolPP)
	fmt.Printf("mkbench trend: %d files (tol %.0f%%, %.0fpp)\n", len(entries), *tol, *tolPP)
	fmt.Print(res.Report)
	if len(res.Regressions) > 0 {
		fmt.Printf("\n%d regression step(s) in the history:\n", len(res.Regressions))
		for _, r := range res.Regressions {
			fmt.Println("  " + r)
		}
		if *failFlag {
			os.Exit(1)
		}
		return
	}
	fmt.Println("\nno regressions beyond tolerance across the history")
}

func read(path string) *benchfmt.File {
	data, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	f, err := benchfmt.Read(data)
	if err != nil {
		fatal(fmt.Errorf("%s: %w", path, err))
	}
	return f
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mkbench:", err)
	os.Exit(1)
}
