// Command mkbench judges wall-clock benchmark artifacts. It is the CI
// bench-regression gate: the bench smoke tests emit BENCH_PR4.json
// ("mklite-bench/v1", best-of-N seconds per mode with rep count and
// spread), and mkbench compares a fresh measurement against the
// checked-in baseline with tolerance bands widened by both runs'
// recorded spreads — scheduler noise is not a regression.
//
// Usage:
//
//	mkbench compare baseline.json current.json
//	mkbench compare -tol 25 -tolpp 5 baseline.json current.json
//	mkbench compare -budget counters_overhead_percent=5 baseline.json current.json
//	mkbench show BENCH_PR4.json
//
// compare exits 1 when a mode slowed beyond its band, a derived
// "*_percent" overhead grew beyond -tolpp percentage points, a speedup
// shrank beyond -tol percent, or a -budget ceiling is exceeded.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"mklite/internal/benchfmt"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "compare":
		compare(os.Args[2:])
	case "show":
		show(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "mkbench: unknown subcommand %q\n\n", os.Args[1])
		usage()
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage:
  mkbench compare [-tol pct] [-tolpp points] [-budget name=max]... baseline.json current.json
  mkbench show file.json
`)
	os.Exit(2)
}

// budgets collects repeated -budget name=max flags.
type budgets []struct {
	name string
	max  float64
}

func (bs *budgets) String() string { return fmt.Sprintf("%d budgets", len(*bs)) }

func (bs *budgets) Set(v string) error {
	name, maxStr, ok := strings.Cut(v, "=")
	if !ok {
		return fmt.Errorf("budget %q: want name=max", v)
	}
	max, err := strconv.ParseFloat(maxStr, 64)
	if err != nil {
		return fmt.Errorf("budget %q: %w", v, err)
	}
	*bs = append(*bs, struct {
		name string
		max  float64
	}{name, max})
	return nil
}

func compare(args []string) {
	fs := flag.NewFlagSet("compare", flag.ExitOnError)
	tol := fs.Float64("tol", 25, "relative tolerance in percent for mode seconds and speedups (widened per mode by both runs' recorded spreads)")
	tolPP := fs.Float64("tolpp", 5, "tolerance in percentage points for derived *_percent metrics")
	var buds budgets
	fs.Var(&buds, "budget", "absolute ceiling on a derived metric of the current file, name=max (repeatable)")
	fs.Parse(args)
	if fs.NArg() != 2 {
		fatal(fmt.Errorf("compare needs a baseline and a current file, got %d args", fs.NArg()))
	}
	oldF, newF := read(fs.Arg(0)), read(fs.Arg(1))

	res := benchfmt.Compare(oldF, newF, *tol, *tolPP)
	fmt.Printf("mkbench compare: %s vs %s (tol %.0f%%, %.0fpp)\n", fs.Arg(0), fs.Arg(1), *tol, *tolPP)
	fmt.Print(res.Report)

	failures := res.Regressions
	for _, bud := range buds {
		if msg := newF.CheckBudget(bud.name, bud.max); msg != "" {
			failures = append(failures, msg)
		}
	}
	if len(failures) > 0 {
		fmt.Println("\nFAIL:")
		for _, f := range failures {
			fmt.Println("  " + f)
		}
		os.Exit(1)
	}
	fmt.Println("\nPASS: no regressions beyond tolerance")
}

func show(args []string) {
	fs := flag.NewFlagSet("show", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 1 {
		fatal(fmt.Errorf("show needs exactly one file, got %d args", fs.NArg()))
	}
	f := read(fs.Arg(0))
	// A self-comparison renders every row with zero deltas — one table
	// formatter for both subcommands.
	fmt.Printf("%s: %s, GOMAXPROCS=%d\n", fs.Arg(0), f.Figure, f.Maxprocs)
	fmt.Print(benchfmt.Compare(f, f, 100, 100).Report)
}

func read(path string) *benchfmt.File {
	data, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	f, err := benchfmt.Read(data)
	if err != nil {
		fatal(fmt.Errorf("%s: %w", path, err))
	}
	return f
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mkbench:", err)
	os.Exit(1)
}
