// Command mktrace records a mechanism-level trace of one simulated run:
// it executes an application on a kernel configuration with the trace
// subsystem enabled, writes the virtual-time event timeline as Chrome
// trace-event JSON (loadable in Perfetto / chrome://tracing), and prints
// the run's mechanism counters.
//
// Usage:
//
//	mktrace -app minife -kernel mckernel -nodes 64 -o minife.trace.json
//	mktrace -app lulesh2.0 -kernel mos -nodes 1 -counters-out run.counters.json
//	mktrace -diff old.counters.json new.counters.json
//	mktrace -validate run.trace.json
package main

import (
	"flag"
	"fmt"
	"os"

	"mklite"
	"mklite/internal/trace"
)

func main() {
	var (
		appName     = flag.String("app", "minife", "application to run")
		kernelStr   = flag.String("kernel", "mckernel", "kernel: linux, mckernel or mos")
		nodes       = flag.Int("nodes", 64, "node count")
		seed        = flag.Uint64("seed", 1, "run seed")
		out         = flag.String("o", "", "trace JSON output path (default <app>-<kernel>-<nodes>.trace.json)")
		countersOut = flag.String("counters-out", "", "also write the counters as schema-versioned JSON to this file")
		eventCap    = flag.Int("event-cap", 0, "bound the event ring (0 = default; oldest events are evicted on overflow)")
		diff        = flag.Bool("diff", false, "diff two counter files (two positional args) and exit")
		validate    = flag.String("validate", "", "validate a trace JSON file and exit")
	)
	flag.Parse()

	if *validate != "" {
		data, err := os.ReadFile(*validate)
		if err != nil {
			fatal(err)
		}
		if err := trace.Validate(data); err != nil {
			fatal(fmt.Errorf("%s: %w", *validate, err))
		}
		fmt.Printf("%s: valid %s trace\n", *validate, trace.EventsSchema)
		return
	}

	if *diff {
		if flag.NArg() != 2 {
			fatal(fmt.Errorf("-diff needs exactly two counter files, got %d args", flag.NArg()))
		}
		oldC, newC := readCounters(flag.Arg(0)), readCounters(flag.Arg(1))
		rows := trace.DiffCounters(oldC, newC)
		if len(rows) == 0 {
			fmt.Println("no counter differences")
			return
		}
		fmt.Printf("%-28s %14s %14s %14s\n", "counter", "old", "new", "delta")
		for _, r := range rows {
			fmt.Printf("%-28s %14d %14d %+14d\n", r.Name, r.Old, r.New, r.Delta())
		}
		return
	}

	k, err := mklite.ParseKernel(*kernelStr)
	if err != nil {
		fatal(err)
	}
	res, err := mklite.Run(*appName, k, *nodes, *seed, &mklite.Options{
		Observe: mklite.Observe{
			Counters: true,
			Events:   true,
			EventCap: *eventCap,
		},
	})
	if err != nil {
		fatal(err)
	}

	// Never ship a trace this binary would itself reject.
	if err := trace.Validate(res.TraceJSON); err != nil {
		fatal(fmt.Errorf("internal error: emitted trace fails validation: %w", err))
	}
	path := *out
	if path == "" {
		path = fmt.Sprintf("%s-%s-%d.trace.json", res.App, *kernelStr, *nodes)
	}
	if err := os.WriteFile(path, res.TraceJSON, 0o644); err != nil {
		fatal(err)
	}

	fmt.Printf("%s on %s, %d nodes: FOM %.6g %s, elapsed %.6g s\n",
		res.App, res.Kernel, res.Nodes, res.FOM, res.Unit, res.ElapsedSeconds)
	fmt.Printf("trace: %s (%d bytes; open in Perfetto or chrome://tracing)\n", path, len(res.TraceJSON))
	fmt.Println("mechanism counters:")
	fmt.Print(mklite.FormatCounters(res.Counters))

	if *countersOut != "" {
		ctrs := trace.NewCounters()
		ctrs.MergeMap(res.Counters)
		f, err := os.Create(*countersOut)
		if err != nil {
			fatal(err)
		}
		if err := ctrs.WriteJSON(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("counters: %s\n", *countersOut)
	}
}

func readCounters(path string) map[string]int64 {
	data, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	m, err := trace.ReadCounters(data)
	if err != nil {
		fatal(fmt.Errorf("%s: %w", path, err))
	}
	return m
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mktrace:", err)
	os.Exit(1)
}
