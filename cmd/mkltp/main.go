// Command mkltp runs the 3,328-case syscall conformance catalogue (the
// paper's LTP experiment, section III-D) against the three kernel models.
//
// Usage:
//
//	mkltp            # summary table
//	mkltp -failed    # also list failing case IDs per kernel
//	mkltp -case brk-shrink-fault -kernel mos
package main

import (
	"flag"
	"fmt"
	"maps"
	"os"
	"slices"
	"strings"

	"mklite"
)

func main() {
	var (
		showFailed = flag.Bool("failed", false, "list failing case ids")
		caseID     = flag.String("case", "", "evaluate a single case id")
		kernelStr  = flag.String("kernel", "mckernel", "kernel for -case")
	)
	flag.Parse()

	if *caseID != "" {
		k, err := mklite.ParseKernel(*kernelStr)
		check(err)
		pass, reason, err := mklite.EvaluateLTPCase(*caseID, k)
		check(err)
		if pass {
			fmt.Printf("%s on %s: PASS\n", *caseID, k)
		} else {
			fmt.Printf("%s on %s: FAIL (%s)\n", *caseID, k, reason)
		}
		return
	}

	reports, rendered, err := mklite.Conformance()
	check(err)
	fmt.Println("Syscall conformance, 3,328 cases (paper: Linux passes all, McKernel fails 32, mOS fails 111)")
	fmt.Print(rendered)
	if *showFailed {
		for _, rep := range reports {
			if rep.Failed == 0 {
				continue
			}
			fmt.Printf("\n%s failure causes:\n", rep.Kernel)
			for _, cause := range slices.Sorted(maps.Keys(rep.ByCause)) {
				fmt.Printf("  %-28s %d\n", cause, rep.ByCause[cause])
			}
		}
		fmt.Println(strings.TrimSpace(`
Use -case <id> -kernel <k> to probe individual cases.`))
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "mkltp:", err)
		os.Exit(1)
	}
}
