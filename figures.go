package mklite

import (
	"fmt"
	"strings"

	"mklite/internal/apps"
	"mklite/internal/experiments"
	"mklite/internal/fault"
	"mklite/internal/ltp"
	"mklite/internal/sched"
	"mklite/internal/stats"
)

// ExperimentConfig controls figure/table regeneration.
type ExperimentConfig struct {
	// Reps per data point (paper: 5; plotted as median with min/max).
	Reps int
	// Seed is the base seed; repetition i runs on the independent
	// SplitMix64 stream seed derived from (Seed, i).
	Seed uint64
	// Quick restricts sweeps to three node counts per application.
	Quick bool
	// Workers bounds the parallel fan-out over independent runs
	// (repetitions, grid cells, applications): 0 uses GOMAXPROCS,
	// 1 forces sequential execution. Output is identical either way.
	Workers int
	// Counters aggregates mechanism counters across every run behind a
	// figure into Figure.Counters (rendered output is unchanged).
	Counters bool
	// Metrics aggregates latency histograms, phase accounting and gauges
	// across every run behind a figure into Figure.MetricsText (rendered
	// figure output is unchanged).
	Metrics bool
	// Faults schedules deterministic fault injection for every run behind
	// a figure that carries no job-level plan of its own — a job-level
	// plan wins outright (see ParseFaults and docs/FAULTS.md,
	// "Precedence"). A nil or empty plan leaves all output byte-identical
	// to a faultless run.
	Faults *fault.Plan
	// SLO is an optional service-level objective spec (the internal/obs
	// grammar, e.g. "utilization_pct>=50;wait_p99_sec<=7200") evaluated
	// against every facility-comparison leg; see DefaultFacilitySLO. The
	// empty spec leaves all output byte-identical.
	SLO string
	// Sched forces a scheduling policy ("cfs", "rr", "coop", "gang",
	// "tickless", "adaptive"; see docs/SCHED.md) onto every run that does
	// not pick one of its own — the schedsweep grid keeps its per-cell
	// choices. Empty keeps each kernel's default, leaving all output
	// byte-identical.
	Sched string
}

func (c ExperimentConfig) internal() experiments.Config {
	return experiments.Config{Reps: c.Reps, Seed: c.Seed, Quick: c.Quick,
		Workers: c.Workers, Counters: c.Counters, Metrics: c.Metrics,
		Faults: c.Faults, SLO: c.SLO, Sched: sched.Kind(c.Sched)}
}

// Point is one measurement of a scaling series.
type Point struct {
	Nodes  int
	Median float64
	Min    float64
	Max    float64
}

// Series is one line of a figure.
type Series struct {
	Name   string
	Unit   string
	Points []Point
}

// Figure is one plot of the paper.
type Figure struct {
	ID     string
	Title  string
	Series []Series
	// Counters holds the merged mechanism counters of the runs behind
	// the figure when ExperimentConfig.Counters was set. Render ignores
	// it, so figure text is identical with and without counting.
	Counters map[string]int64
	// MetricsText holds the rendered mklite-metrics report of the merged
	// runs behind the figure when ExperimentConfig.Metrics was set.
	// Render ignores it too.
	MetricsText string
}

// Get returns the named series or nil.
func (f *Figure) Get(name string) *Series {
	for i := range f.Series {
		if f.Series[i].Name == name {
			return &f.Series[i]
		}
	}
	return nil
}

// Render formats the figure as an aligned text table.
func (f *Figure) Render() string { return toStatsFigure(f).Render() }

func fromStatsFigure(sf *stats.Figure) Figure {
	out := Figure{ID: sf.ID, Title: sf.Title, Counters: sf.Counters, MetricsText: sf.MetricsText}
	for _, s := range sf.Series {
		ns := Series{Name: s.Name, Unit: s.Unit}
		for _, p := range s.Points {
			ns.Points = append(ns.Points, Point{Nodes: p.Nodes, Median: p.Median, Min: p.Min, Max: p.Max})
		}
		out.Series = append(out.Series, ns)
	}
	return out
}

func toStatsFigure(f *Figure) *stats.Figure {
	sf := &stats.Figure{ID: f.ID, Title: f.Title}
	for _, s := range f.Series {
		ns := &stats.Series{Name: s.Name, Unit: s.Unit}
		for _, p := range s.Points {
			ns.Points = append(ns.Points, stats.Point{
				Nodes:   p.Nodes,
				Summary: stats.Summary{Median: p.Median, Min: p.Min, Max: p.Max},
			})
		}
		sf.Series = append(sf.Series, ns)
	}
	return sf
}

// ReproduceFigure4 regenerates the paper's Figure 4: one absolute
// three-kernel figure per application, plus the cross-application summary
// (median and best relative improvement). Use Relative to obtain the
// paper's normalised presentation of any returned figure.
func ReproduceFigure4(cfg ExperimentConfig) ([]Figure, Figure4Summary, error) {
	figs, err := experiments.Figure4(cfg.internal())
	if err != nil {
		return nil, Figure4Summary{}, err
	}
	var out []Figure
	for _, f := range figs {
		out = append(out, fromStatsFigure(f))
	}
	s := experiments.SummarizeFigure4(figs)
	return out, Figure4Summary{
		MedianImprovement: s.MedianImprovement,
		BestImprovement:   s.BestImprovement,
		BestApp:           strings.TrimPrefix(s.BestApp, "fig4-"),
		BestNodes:         s.BestNodes,
		BestKernel:        s.BestKernel,
	}, nil
}

// Figure4Summary condenses Figure 4 the way the paper's abstract does.
type Figure4Summary struct {
	MedianImprovement float64
	BestImprovement   float64
	BestApp           string
	BestNodes         int
	BestKernel        string
}

// ReproduceFigure5a regenerates the CCS-QCD comparison (% of Linux median).
func ReproduceFigure5a(cfg ExperimentConfig) (Figure, error) {
	f, err := experiments.Figure5a(cfg.internal())
	if err != nil {
		return Figure{}, err
	}
	return fromStatsFigure(f), nil
}

// ReproduceFigure5b regenerates the MiniFE scaling plot (Mflops).
func ReproduceFigure5b(cfg ExperimentConfig) (Figure, error) {
	f, err := experiments.Figure5b(cfg.internal())
	if err != nil {
		return Figure{}, err
	}
	return fromStatsFigure(f), nil
}

// ReproduceFigure6a regenerates the Lulesh 2.0 scaling plot (zones/s).
func ReproduceFigure6a(cfg ExperimentConfig) (Figure, error) {
	f, err := experiments.Figure6a(cfg.internal())
	if err != nil {
		return Figure{}, err
	}
	return fromStatsFigure(f), nil
}

// ReproduceFigure6b regenerates the LAMMPS scaling plot (timesteps/s).
func ReproduceFigure6b(cfg ExperimentConfig) (Figure, error) {
	f, err := experiments.Figure6b(cfg.internal())
	if err != nil {
		return Figure{}, err
	}
	return fromStatsFigure(f), nil
}

// ReproduceResilience runs the fault-injection experiment "one slow node
// poisons an allreduce at N nodes": MiniFE clean vs a single fixed-detour
// straggler (fault.Straggler with Extra set) at every node count on all
// three kernels, reported as percent slowdown. The curve rises with node
// count: strong scaling shrinks the healthy per-step time while the
// straggler's detour — absorbed by every rank at each allreduce — stays
// fixed.
func ReproduceResilience(cfg ExperimentConfig) (Figure, error) {
	f, err := experiments.Resilience(cfg.internal())
	if err != nil {
		return Figure{}, err
	}
	return fromStatsFigure(f), nil
}

// ReproduceSchedSweep runs the scheduler-policy sweep: every policy of the
// scheduling seam ("cfs", "rr", "coop", "gang", "tickless", "adaptive") on
// all three kernels across each application's node counts (up to 2,048),
// reporting the noise-gap percentage — the share of elapsed time lost to
// interference plus explicit scheduler charges. One figure per application
// (MiniFE: collective-bound; LAMMPS: halo-bound); series are named
// "<kernel>/<policy>". See docs/SCHED.md.
func ReproduceSchedSweep(cfg ExperimentConfig) ([]Figure, error) {
	figs, err := experiments.SchedSweep(cfg.internal())
	if err != nil {
		return nil, err
	}
	var out []Figure
	for _, f := range figs {
		out = append(out, fromStatsFigure(f))
	}
	return out, nil
}

// TableIRow is one row of the paper's Table I.
type TableIRow struct {
	Config  string
	ZonesPS float64
	Percent float64
}

// ReproduceTableI regenerates Table I (Lulesh brk optimisations in DDR4)
// and returns the rows plus a rendered text table.
func ReproduceTableI(cfg ExperimentConfig) ([]TableIRow, string, error) {
	rows, tb, err := experiments.TableI(cfg.internal())
	if err != nil {
		return nil, "", err
	}
	var out []TableIRow
	for _, r := range rows {
		out = append(out, TableIRow{Config: r.Config, ZonesPS: r.ZonesPS, Percent: r.Percent})
	}
	return out, tb.Render(), nil
}

// ConformanceReport is one kernel's LTP-style result (section III-D).
type ConformanceReport struct {
	Kernel  string
	Total   int
	Passed  int
	Failed  int
	ByCause map[string]int
}

// Conformance runs the 3,328-case syscall conformance catalogue against
// all three kernels.
func Conformance() ([]ConformanceReport, string, error) {
	reports, tb, err := experiments.LTPResults()
	if err != nil {
		return nil, "", err
	}
	var out []ConformanceReport
	for _, rep := range reports {
		causes := map[string]int{}
		for k, v := range rep.ByCause {
			causes[string(k)] = v
		}
		out = append(out, ConformanceReport{
			Kernel:  rep.Kernel,
			Total:   rep.Total,
			Passed:  rep.Passed,
			Failed:  rep.Failed,
			ByCause: causes,
		})
	}
	return out, tb.Render(), nil
}

// EvaluateLTPCase runs a single named conformance case against a kernel
// type; used by tools that want per-case detail.
func EvaluateLTPCase(id string, k Kernel) (pass bool, reason string, err error) {
	for _, c := range ltp.Catalogue() {
		if c.ID != id {
			continue
		}
		kt, err := k.internalType()
		if err != nil {
			return false, "", err
		}
		kern, err := bootForType(kt)
		if err != nil {
			return false, "", err
		}
		r := ltp.Evaluate(kern, c)
		return r == "", string(r), nil
	}
	return false, "", fmt.Errorf("mklite: unknown LTP case %q", id)
}

// BrkTraceReport carries the section IV heap-trace statistics.
type BrkTraceReport struct {
	Kernel          string
	Queries         int64
	Grows           int64
	Shrinks         int64
	Calls           int64
	PeakBytes       int64
	CumulativeBytes int64
	HeapFaults      int64
}

// ReproduceBrkTrace replays the Lulesh heap trace on each kernel.
func ReproduceBrkTrace(cfg ExperimentConfig) ([]BrkTraceReport, error) {
	traces, err := experiments.BrkTrace(cfg.internal())
	if err != nil {
		return nil, err
	}
	var out []BrkTraceReport
	for _, tr := range traces {
		out = append(out, BrkTraceReport(tr))
	}
	return out, nil
}

// ProxyOptionReport carries a section IV proxy-option measurement.
type ProxyOptionReport struct {
	App          string
	Nodes        int
	BaselineFOM  float64
	OptimizedFOM float64
	GainPercent  float64
}

// ReproduceProxyOptions runs the --mpol-shm-premap/--disable-sched-yield
// comparison on AMG 2013 and MiniFE at 16 nodes.
func ReproduceProxyOptions(cfg ExperimentConfig) ([]ProxyOptionReport, error) {
	res, err := experiments.ProxyOptions(cfg.internal())
	if err != nil {
		return nil, err
	}
	var out []ProxyOptionReport
	for _, r := range res {
		out = append(out, ProxyOptionReport(r))
	}
	return out, nil
}

// AblationReport carries the design-space microbenchmarks.
type AblationReport struct {
	FWQNoisePercent      map[string]float64
	OffloadRoundTripSecs map[string]float64
	SchedulerMakespan    map[string]float64
	IKCQueueingTailSecs  float64
	Rendered             string
}

// ReproduceAblations runs the section II design-claim microbenchmarks.
func ReproduceAblations(cfg ExperimentConfig) (AblationReport, error) {
	a, err := experiments.Ablations(cfg.internal())
	if err != nil {
		return AblationReport{}, err
	}
	rep := AblationReport{
		FWQNoisePercent:      a.FWQNoisePercent,
		OffloadRoundTripSecs: map[string]float64{},
		SchedulerMakespan:    map[string]float64{},
		IKCQueueingTailSecs:  a.IKCQueueingTail.Seconds(),
		Rendered:             experiments.RenderAblations(a),
	}
	for k, v := range a.OffloadRoundTrip {
		rep.OffloadRoundTripSecs[k] = v.Seconds()
	}
	for k, v := range a.SchedulerMakespan {
		rep.SchedulerMakespan[k] = v.Seconds()
	}
	return rep, nil
}

// Relative converts an absolute three-kernel figure into the paper's
// normalised form: every non-Linux series expressed as a multiple of the
// Linux median at the same node count.
func Relative(f Figure) Figure {
	rel := experiments.RelativeFigure(toStatsFigure(&f))
	out := fromStatsFigure(rel)
	for i := range out.Series {
		out.Series[i].Unit = "x Linux"
	}
	return out
}

// QuadrantRow is one configuration of the clustering-mode comparison.
type QuadrantRow struct {
	Config  string
	FOM     float64
	Percent float64
}

// ReproduceQuadrant runs the section III-B clustering-mode comparison on
// CCS-QCD: Linux SNC-4 (DDR4-only) vs Linux quadrant (numactl -p MCDRAM
// with spill) vs the LWKs on SNC-4.
func ReproduceQuadrant(cfg ExperimentConfig) ([]QuadrantRow, error) {
	rows, err := experiments.QuadrantComparison(cfg.internal())
	if err != nil {
		return nil, err
	}
	var out []QuadrantRow
	for _, r := range rows {
		out = append(out, QuadrantRow(r))
	}
	return out, nil
}

// FacilityPolicyResult is one kernel-selection policy's facility outcome in
// the facility-scale comparison (see internal/fleet and docs/FLEET.md).
type FacilityPolicyResult struct {
	Policy         string
	Jobs           int
	JobsPerHour    float64
	UtilizationPct float64
	WaitP50Sec     float64
	WaitP99Sec     float64
	Backfilled     int
	Interfered     int
	KernelJobs     map[string]int
	// SLOPassed is this leg's watchdog verdict when ExperimentConfig.SLO
	// was set, nil otherwise.
	SLOPassed *bool
}

// DefaultFacilitySLO is the stock facility service-level objective spec for
// ExperimentConfig.SLO (see internal/experiments and docs/OBSERVABILITY.md).
const DefaultFacilitySLO = experiments.DefaultFacilitySLO

// ReproduceFacility runs the facility-scale kernel-policy comparison: the
// same seeded 1,000-job stream (150 under Quick) scheduled onto the same
// oversubscribed facility under each kernel-selection policy — fixed
// Linux/McKernel/mOS, the static profile heuristic, and MultiK-style
// per-app specialization — reporting throughput, utilization and queue-wait
// quantiles per policy, plus the rendered comparison table.
func ReproduceFacility(cfg ExperimentConfig) ([]FacilityPolicyResult, string, error) {
	cmp, err := experiments.Facility(cfg.internal())
	if err != nil {
		return nil, "", err
	}
	var out []FacilityPolicyResult
	for _, r := range cmp.Results {
		fr := FacilityPolicyResult{
			Policy:         r.Policy,
			Jobs:           r.Jobs,
			JobsPerHour:    r.JobsPerHour,
			UtilizationPct: r.UtilizationPct,
			WaitP50Sec:     r.WaitP50Sec,
			WaitP99Sec:     r.WaitP99Sec,
			Backfilled:     r.Backfilled,
			Interfered:     r.Interfered,
			KernelJobs:     r.KernelJobs,
		}
		if r.SLO != nil {
			passed := r.SLO.Passed
			fr.SLOPassed = &passed
		}
		out = append(out, fr)
	}
	return out, cmp.Rendered, nil
}

// AppNodeCounts returns the node counts an app is evaluated on.
func AppNodeCounts(appName string) ([]int, error) {
	s, err := apps.Get(appName)
	if err != nil {
		return nil, err
	}
	return append([]int(nil), s.NodeCounts...), nil
}

// CoreSpecRow is one configuration of the core-specialisation comparison
// (section III-A: "mOS using 64 or 66 cores beats Linux on 68 cores").
type CoreSpecRow struct {
	Config   string
	AppCores int
	FOM      float64
	Percent  float64
}

// ReproduceCoreSpecialization runs the core-specialisation comparison.
func ReproduceCoreSpecialization(cfg ExperimentConfig) ([]CoreSpecRow, error) {
	rows, err := experiments.CoreSpecialization(cfg.internal())
	if err != nil {
		return nil, err
	}
	var out []CoreSpecRow
	for _, r := range rows {
		out = append(out, CoreSpecRow(r))
	}
	return out, nil
}

// BrkTraceS30Report is the full-fidelity section IV replay result.
type BrkTraceS30Report struct {
	Kernel          string
	Calls           int64
	PeakBytes       int64
	CumulativeBytes int64
	HeapFaults      int64
	ZeroedBytes     int64
	KernelTimeSecs  float64
}

// ReproduceBrkTraceS30 replays the paper's exact 12,053-call Lulesh -s30
// brk trace (7,526 queries / 3,028 grows / 1,499 shrinks) call-for-call
// through each kernel's syscall layer.
func ReproduceBrkTraceS30() ([]BrkTraceS30Report, error) {
	res, err := experiments.BrkTraceS30()
	if err != nil {
		return nil, err
	}
	var out []BrkTraceS30Report
	for _, r := range res {
		out = append(out, BrkTraceS30Report(r))
	}
	return out, nil
}
